open Hqs_util
module L = Sat.Lit

type mode = Off | On | Full

let mode_name = function Off -> "off" | On -> "on" | Full -> "full"

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" | "0" -> Some Off
  | "on" | "1" -> Some On
  | "full" | "2" -> Some Full
  | _ -> None

let default_mode = On

let mode_of_env () =
  match Sys.getenv_opt "HQS_INPROC" with
  | None | Some "" -> Ok default_mode
  | Some s -> (
      match mode_of_string s with
      | Some m -> Ok m
      | None -> Error (Printf.sprintf "HQS_INPROC=%S: expected off, on or full" s))

type config = {
  unit_propagation : bool;
  universal_reduction : bool;
  equivalences : bool;
  subsumption : bool;
  self_subsumption : bool;
  probe : bool;
  bve : bool;
  max_rounds : int;
  bve_cap : int;
}

let config_of_mode = function
  | Off ->
      {
        unit_propagation = false;
        universal_reduction = false;
        equivalences = false;
        subsumption = false;
        self_subsumption = false;
        probe = false;
        bve = false;
        max_rounds = 0;
        bve_cap = 0;
      }
  | On ->
      {
        unit_propagation = true;
        universal_reduction = true;
        equivalences = true;
        subsumption = true;
        self_subsumption = true;
        probe = false;
        bve = false;
        max_rounds = 50;
        bve_cap = 0;
      }
  | Full ->
      {
        unit_propagation = true;
        universal_reduction = true;
        equivalences = true;
        subsumption = true;
        self_subsumption = true;
        probe = true;
        bve = true;
        max_rounds = 50;
        bve_cap = 400;
      }

type problem = {
  num_vars : int;
  univs : Bitset.t;
  deps : (int * Bitset.t) list;
  clauses : int list list;
}

type step =
  | Unit of int
  | Reduced of { clause : int list; dropped : int list }
  | Merged of { y : int; rep : int }
  | Subsumed of { clause : int list; by : int list }
  | Strengthened of { clause : int list; removed : int; by : int list }
  | Eliminated of { y : int; dep_y : int list; pos : int list list; neg : int list list }

type stats = {
  rounds : int;
  units : int;
  reduced_lits : int;
  scc_merges : int;
  subsumed : int;
  strengthened : int;
  failed_lits : int;
  bve_eliminated : int;
  clauses_before : int;
  clauses_after : int;
  lits_before : int;
  lits_after : int;
  vars_before : int;
  vars_after : int;
}

type result = {
  clauses : int list list;
  univs : Bitset.t;
  deps : (int * Bitset.t) list;
  steps : step list;
  stats : stats;
}

type outcome = Unsat | Simplified of result

exception Refuted

(* ------------------------------------------------------------- metrics *)

let c_runs = Obs.Metrics.counter "inproc.runs"
let c_units = Obs.Metrics.counter "inproc.units"
let c_merges = Obs.Metrics.counter "inproc.scc_merges"
let c_subsumed = Obs.Metrics.counter "inproc.subsumed"
let c_strengthened = Obs.Metrics.counter "inproc.strengthened"
let c_failed = Obs.Metrics.counter "inproc.failed_lits"
let c_bve = Obs.Metrics.counter "inproc.bve_eliminated"
let c_clauses_removed = Obs.Metrics.counter "inproc.clauses_removed"
let c_lits_removed = Obs.Metrics.counter "inproc.lits_removed"

(* -------------------------------------------------------- clause arena *)

(* [csig] is a 63-bit Bloom signature over the literals: a clause can
   only be a subset of another if its signature bits are contained, so
   the quadratic subset tests behind subsumption are gated by one land.
   [irred] distinguishes irredundant (original / resolvent) clauses from
   redundant learned ones; the engine currently only produces irredundant
   clauses, but the occurrence counters track both kinds so a future
   learnt-clause feed does not change the index invariants. *)
type cls = { mutable lits : int list; mutable alive : bool; mutable csig : int; irred : bool }

let sig_of lits = List.fold_left (fun s l -> s lor (1 lsl (l mod 63))) 0 lits

type st = {
  cfg : config;
  nvars : int;
  mutable univs : Bitset.t;
  deps : (int, Bitset.t) Hashtbl.t;
  mutable arena : cls array;
  mutable n : int;
  value : int array; (* per var: -1 unknown, 0 false, 1 true *)
  sub : int array; (* var -> representative literal of its positive literal *)
  mutable occ : int list array; (* literal -> clause ids (stale-tolerant) *)
  occ_irred : int array; (* literal -> live irredundant occurrence count *)
  occ_red : int array; (* literal -> live redundant occurrence count *)
  mutable steps : step list; (* reversed chronological *)
  mutable units : int;
  mutable reduced_lits : int;
  mutable scc_merges : int;
  mutable subsumed : int;
  mutable strengthened : int;
  mutable failed_lits : int;
  mutable bve_eliminated : int;
}

let is_univ st v = Bitset.mem v st.univs
let is_exist st v = Hashtbl.mem st.deps v
let push_step st s = st.steps <- s :: st.steps

let dummy_cls = { lits = []; alive = false; csig = 0; irred = true }

let grow st =
  if st.n = Array.length st.arena then begin
    let bigger = Array.make (max 16 (2 * st.n)) dummy_cls in
    Array.blit st.arena 0 bigger 0 st.n;
    st.arena <- bigger
  end

let occ_count st l = st.occ_irred.(l) + st.occ_red.(l)

let bump st c by =
  let cnt = if c.irred then st.occ_irred else st.occ_red in
  List.iter (fun l -> cnt.(l) <- cnt.(l) + by) c.lits

let kill st c =
  if c.alive then begin
    c.alive <- false;
    bump st c (-1)
  end

(* append a clause and index it; the occurrence lists of dead clauses
   are never eagerly cleaned (consumers filter), only the counters are
   exact *)
let add_clause st lits =
  grow st;
  let c = { lits; alive = true; csig = sig_of lits; irred = true } in
  let id = st.n in
  st.arena.(id) <- c;
  st.n <- st.n + 1;
  List.iter (fun l -> st.occ.(l) <- id :: st.occ.(l)) lits;
  bump st c 1;
  id

let build_occ st =
  let occ = Array.make (2 * st.nvars) [] in
  Array.fill st.occ_irred 0 (2 * st.nvars) 0;
  Array.fill st.occ_red 0 (2 * st.nvars) 0;
  for i = st.n - 1 downto 0 do
    let c = st.arena.(i) in
    if c.alive then begin
      List.iter (fun l -> occ.(l) <- i :: occ.(l)) c.lits;
      let cnt = if c.irred then st.occ_irred else st.occ_red in
      List.iter (fun l -> cnt.(l) <- cnt.(l) + 1) c.lits
    end
  done;
  st.occ <- occ

(* ------------------------------------------------------- substitution *)

let rec find_pos st v =
  let s = st.sub.(v) in
  if s = L.of_var v then s
  else begin
    let r = L.apply_sign (find_pos st (L.var s)) ~neg:(L.is_neg s) in
    st.sub.(v) <- r;
    r
  end

let find st l = L.apply_sign (find_pos st (L.var l)) ~neg:(L.is_neg l)

(* make literal [l] (already a representative) true; a universal unit
   refutes: the matrix is falsifiable under the opposite universal value *)
let assign st l =
  let v = L.var l in
  if is_univ st v then raise Refuted;
  match st.value.(v) with
  | -1 ->
      st.value.(v) <- (if L.is_pos l then 1 else 0);
      st.units <- st.units + 1;
      push_step st (Unit l);
      Hashtbl.remove st.deps v
  | x -> if (x = 1) <> L.is_pos l then raise Refuted

(* truth value of a representative literal, if assigned *)
let lit_value st l =
  match st.value.(L.var l) with -1 -> None | x -> Some ((x = 1) <> L.is_neg l)

(* --------------------------------------------------- rewriting fixpoint *)

let rec taut = function
  | a :: (b :: _ as rest) -> (L.var a = L.var b && a <> b) || taut rest
  | [ _ ] | [] -> false

(* universal reduction: a universal literal stays only if some
   existential in the clause depends on it *)
let ureduce st lits =
  let needed u =
    List.exists
      (fun l ->
        match Hashtbl.find_opt st.deps (L.var l) with
        | Some d -> Bitset.mem u d
        | None -> false)
      lits
  in
  List.partition (fun l -> (not (is_univ st (L.var l))) || needed (L.var l)) lits

(* apply substitution + assignments to every clause, normalize, reduce,
   propagate units; loops until no new assignment. The occurrence index
   is stale after this pass — phases that need it rebuild it. *)
let simplify st =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    for i = 0 to st.n - 1 do
      let c = st.arena.(i) in
      if c.alive then begin
        let mapped = List.map (find st) c.lits in
        if List.exists (fun l -> lit_value st l = Some true) mapped then begin
          kill st c;
          changed := true
        end
        else begin
          let lits =
            List.filter (fun l -> lit_value st l <> Some false) mapped
            |> List.sort_uniq Int.compare
          in
          if taut lits then begin
            kill st c;
            changed := true
          end
          else begin
            let lits, dropped =
              if st.cfg.universal_reduction then ureduce st lits else (lits, [])
            in
            if dropped <> [] then begin
              st.reduced_lits <- st.reduced_lits + List.length dropped;
              push_step st (Reduced { clause = lits @ dropped; dropped })
            end;
            if lits = [] then raise Refuted;
            if lits <> c.lits then begin
              bump st c (-1);
              c.lits <- lits;
              c.csig <- sig_of lits;
              bump st c 1;
              changed := true
            end;
            match lits with
            | [ l ] when st.cfg.unit_propagation ->
                assign st l;
                kill st c;
                continue_ := true;
                changed := true
            | _ -> ()
          end
        end
      end
    done
  done;
  !changed

(* ------------------------------------------- BIG + SCC (equivalences) *)

(* binary implication graph: clause (a | b) contributes !a -> b and
   !b -> a *)
let big_adjacency st =
  let adj = Array.make (2 * st.nvars) [] in
  for i = 0 to st.n - 1 do
    let c = st.arena.(i) in
    if c.alive then
      match c.lits with
      | [ a; b ] ->
          adj.(L.neg a) <- b :: adj.(L.neg a);
          adj.(L.neg b) <- a :: adj.(L.neg b)
      | _ -> ()
  done;
  adj

(* iterative Tarjan over the literal graph; returns the component id of
   every literal (-1 for unvisited isolated nodes keeps them singleton) *)
let tarjan_scc nnodes adj =
  let index = Array.make nnodes (-1) in
  let lowlink = Array.make nnodes 0 in
  let on_stack = Array.make nnodes false in
  let comp = Array.make nnodes (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let visit root =
    (* explicit call stack: (node, remaining successors) *)
    let calls = ref [ (root, adj.(root)) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !calls <> [] do
      match !calls with
      | [] -> ()
      | (v, succs) :: rest -> (
          match succs with
          | w :: more ->
              calls := (v, more) :: rest;
              if index.(w) = -1 then begin
                index.(w) <- !next_index;
                lowlink.(w) <- !next_index;
                incr next_index;
                stack := w :: !stack;
                on_stack.(w) <- true;
                calls := (w, adj.(w)) :: !calls
              end
              else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
          | [] ->
              calls := rest;
              (match rest with
              | (p, _) :: _ -> lowlink.(p) <- min lowlink.(p) lowlink.(v)
              | [] -> ());
              if lowlink.(v) = index.(v) then begin
                let cid = !next_comp in
                incr next_comp;
                let rec pop () =
                  match !stack with
                  | w :: tl ->
                      stack := tl;
                      on_stack.(w) <- false;
                      comp.(w) <- cid;
                      if w <> v then pop ()
                  | [] -> ()
                in
                pop ()
              end)
    done
  in
  for v = 0 to nnodes - 1 do
    if index.(v) = -1 && adj.(v) <> [] then visit v
  done;
  comp

(* Equivalence substitution driven by the SCCs of the BIG. DQBF-adapted
   merge legality:
   - a component holding a literal and its own negation is a
     contradiction;
   - two universal variables forced equal (in either polarity) refute;
   - an existential forced equal to a universal must carry that
     universal in its dependency set, else no Skolem function exists;
   - merged existentials keep the intersection of their dependency sets
     (each Skolem function must agree with the others on every universal
     assignment, so it can only read the shared inputs). *)
let scc_pass st =
  let nnodes = 2 * st.nvars in
  let adj = big_adjacency st in
  let comp = tarjan_scc nnodes adj in
  let classes : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  for l = 0 to nnodes - 1 do
    if comp.(l) >= 0 then begin
      if comp.(l) = comp.(L.neg l) then raise Refuted;
      match Hashtbl.find_opt classes comp.(l) with
      | Some cell -> cell := l :: !cell
      | None -> Hashtbl.add classes comp.(l) (ref [ l ])
    end
  done;
  let merged = ref false in
  Hashtbl.iter
    (fun _ cell ->
      (* keep only literals over variables still in the prefix *)
      let members =
        List.filter (fun l -> is_univ st (L.var l) || is_exist st (L.var l)) !cell
      in
      match members with
      | [] | [ _ ] -> ()
      | members -> (
          let universals = List.filter (fun l -> is_univ st (L.var l)) members in
          let merge_into rep m =
            let y = L.var m in
            let rep_for_y = L.apply_sign rep ~neg:(L.is_neg m) in
            st.sub.(y) <- rep_for_y;
            push_step st (Merged { y; rep = rep_for_y });
            Hashtbl.remove st.deps y;
            st.scc_merges <- st.scc_merges + 1;
            merged := true
          in
          match universals with
          | _ :: _ :: _ -> raise Refuted
          | [ u ] ->
              List.iter
                (fun m ->
                  if L.var m <> L.var u then begin
                    if not (Bitset.mem (L.var u) (Hashtbl.find st.deps (L.var m))) then
                      raise Refuted;
                    merge_into u m
                  end)
                members
          | [] ->
              let rep =
                List.fold_left (fun a b -> if L.var b < L.var a then b else a)
                  (List.hd members) members
              in
              let inter =
                List.fold_left
                  (fun acc m -> Bitset.inter acc (Hashtbl.find st.deps (L.var m)))
                  (Hashtbl.find st.deps (L.var rep))
                  members
              in
              Hashtbl.replace st.deps (L.var rep) inter;
              List.iter (fun m -> if L.var m <> L.var rep then merge_into rep m) members))
    classes;
  !merged

(* ------------------------------------- subsumption / self-subsumption *)

(* sorted-list subset test *)
let rec subset a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys ->
      if x = y then subset xs ys else if x > y then subset a ys else false

let live_occ st l = List.filter (fun j -> (st.arena.(j)).alive) st.occ.(l)

let min_occ_lit st lits =
  List.fold_left
    (fun best l -> if occ_count st l < occ_count st best then l else best)
    (List.hd lits) lits

let subsume_pass st =
  let changed = ref false in
  let ids = ref [] in
  for i = st.n - 1 downto 0 do
    if (st.arena.(i)).alive then ids := i :: !ids
  done;
  let by_len =
    List.sort
      (fun i j ->
        Int.compare (List.length (st.arena.(i)).lits) (List.length (st.arena.(j)).lits))
      !ids
  in
  List.iter
    (fun i ->
      let c = st.arena.(i) in
      if c.alive then begin
        (* forward subsumption: c removes every superset, searched through
           the occurrence list of its rarest literal *)
        if st.cfg.subsumption then begin
          let pivot = min_occ_lit st c.lits in
          List.iter
            (fun j ->
              if j <> i then begin
                let d = st.arena.(j) in
                if
                  d.alive
                  && List.length d.lits >= List.length c.lits
                  && c.csig land lnot d.csig = 0
                  && subset c.lits d.lits
                then begin
                  push_step st (Subsumed { clause = d.lits; by = c.lits });
                  kill st d;
                  st.subsumed <- st.subsumed + 1;
                  changed := true
                end
              end)
            (live_occ st pivot)
        end;
        (* self-subsumption: if c \ {l} subsumes d \ {!l}, the resolvent
           on l subsumes d, so !l can be struck from d *)
        if st.cfg.self_subsumption && c.alive then
          List.iter
            (fun l ->
              let rest = List.filter (fun k -> k <> l) c.lits in
              let rest_sig = sig_of rest in
              List.iter
                (fun j ->
                  let d = st.arena.(j) in
                  if
                    j <> i && d.alive && c.alive
                    && List.length d.lits >= List.length c.lits
                    && rest_sig land lnot d.csig = 0
                    && List.mem (L.neg l) d.lits
                    && subset rest (List.filter (fun k -> k <> L.neg l) d.lits)
                  then begin
                    push_step st
                      (Strengthened { clause = d.lits; removed = L.neg l; by = c.lits });
                    bump st d (-1);
                    d.lits <- List.filter (fun k -> k <> L.neg l) d.lits;
                    d.csig <- sig_of d.lits;
                    bump st d 1;
                    st.strengthened <- st.strengthened + 1;
                    changed := true;
                    if d.lits = [] then raise Refuted
                  end)
                (live_occ st (L.neg l)))
            c.lits
      end)
    by_len;
  !changed

(* ---------------------------------------------- failed-literal probing *)

(* Probe the roots of the BIG (in-degree 0, out-degree > 0): if the
   implication closure of [r] contains a literal and its negation, then
   matrix /\ r is unsatisfiable, so !r is implied — a unit if the
   variable is existential, a refutation if it is universal (the matrix
   admits no completion on the r side of that universal). Only BIG edges
   are followed, so the closure is sound (every edge is a matrix
   implication) but not complete — this is the cheap probe, not a SAT
   call. *)
let probe_pass st =
  let nnodes = 2 * st.nvars in
  let adj = big_adjacency st in
  let indeg = Array.make nnodes 0 in
  Array.iter (fun succs -> List.iter (fun w -> indeg.(w) <- indeg.(w) + 1) succs) adj;
  let changed = ref false in
  let seen = Array.make nnodes (-1) in
  let stamp = ref 0 in
  for r = 0 to nnodes - 1 do
    if adj.(r) <> [] && indeg.(r) = 0 then begin
      incr stamp;
      let conflict = ref false in
      let work = ref [ r ] in
      seen.(r) <- !stamp;
      while !work <> [] && not !conflict do
        match !work with
        | [] -> ()
        | v :: rest ->
            work := rest;
            List.iter
              (fun w ->
                if not !conflict then
                  if seen.(L.neg w) = !stamp then conflict := true
                  else if seen.(w) <> !stamp then begin
                    seen.(w) <- !stamp;
                    work := w :: !work
                  end)
              adj.(v)
      done;
      if !conflict then begin
        st.failed_lits <- st.failed_lits + 1;
        (* assign raises Refuted on a universal, which is exactly the
           semantics of a failed universal literal *)
        assign st (find st (L.neg r));
        changed := true
      end
    end
  done;
  !changed

(* ------------------------------- bounded variable elimination (Henkin) *)

(* Resolution-based elimination of an existential [y] is Henkin-legal
   only when every other variable in a clause containing [y] is
   dependency-below [y]: then every resolvent constrains only variables
   [y]'s Skolem function may read, and the reconstruction function
   (y := OR over positive clauses C of AND_{l in C\y} !l) is a legal
   Skolem definition over D_y. Pure existentials (one empty side) are
   eliminated unconditionally: their reconstruction is a constant. *)
let dep_below st v d_y =
  if is_univ st v then Bitset.mem v d_y
  else match Hashtbl.find_opt st.deps v with Some dv -> Bitset.subset dv d_y | None -> false

let bve_pass st =
  let changed = ref false in
  let exists = Hashtbl.fold (fun y _ acc -> y :: acc) st.deps [] in
  let cheap_first =
    List.sort
      (fun a b ->
        Int.compare
          (occ_count st (L.of_var a) * occ_count st (L.neg (L.of_var a)))
          (occ_count st (L.of_var b) * occ_count st (L.neg (L.of_var b))))
      exists
  in
  List.iter
    (fun y ->
      if is_exist st y && st.value.(y) = -1 && st.sub.(y) = L.of_var y then begin
        let py = L.of_var y and ny = L.neg (L.of_var y) in
        let live l = List.filter (fun j -> List.mem l (st.arena.(j)).lits) (live_occ st l) in
        let pl = live py and nl = live ny in
        if pl = [] && nl = [] then ()
        else if pl = [] then begin
          (* pure negative: the constant-false Skolem function works *)
          assign st ny;
          st.bve_eliminated <- st.bve_eliminated + 1;
          changed := true
        end
        else if nl = [] then begin
          assign st py;
          st.bve_eliminated <- st.bve_eliminated + 1;
          changed := true
        end
        else if List.length pl * List.length nl <= st.cfg.bve_cap then begin
          let d_y = Hashtbl.find st.deps y in
          let legal =
            List.for_all
              (fun j ->
                List.for_all
                  (fun l -> L.var l = y || dep_below st (L.var l) d_y)
                  (st.arena.(j)).lits)
              (pl @ nl)
          in
          if legal then begin
            let resolvents =
              List.concat_map
                (fun i ->
                  let ci = List.filter (fun l -> l <> py) (st.arena.(i)).lits in
                  List.filter_map
                    (fun j ->
                      let cj = List.filter (fun l -> l <> ny) (st.arena.(j)).lits in
                      let r = List.sort_uniq Int.compare (ci @ cj) in
                      if taut r then None else Some r)
                    nl)
                pl
            in
            let resolvents =
              List.sort_uniq (List.compare Int.compare) resolvents
            in
            (* bounded: never let elimination grow the clause set *)
            if List.length resolvents <= List.length pl + List.length nl then begin
              push_step st
                (Eliminated
                   {
                     y;
                     dep_y = Bitset.to_list d_y;
                     pos = List.map (fun j -> (st.arena.(j)).lits) pl;
                     neg = List.map (fun j -> (st.arena.(j)).lits) nl;
                   });
              List.iter (fun j -> kill st st.arena.(j)) (pl @ nl);
              List.iter (fun r -> ignore (add_clause st r)) resolvents;
              Hashtbl.remove st.deps y;
              st.bve_eliminated <- st.bve_eliminated + 1;
              changed := true
            end
          end
        end
      end)
    cheap_first;
  !changed

(* ---------------------------------------------------------------- run *)

let live_counts st =
  let cl = ref 0 and li = ref 0 in
  for i = 0 to st.n - 1 do
    let c = st.arena.(i) in
    if c.alive then begin
      incr cl;
      li := !li + List.length c.lits
    end
  done;
  (!cl, !li)

let run ?config (p : problem) =
  let cfg = match config with Some c -> c | None -> config_of_mode default_mode in
  let nvars =
    List.fold_left
      (fun acc c -> List.fold_left (fun acc l -> max acc (L.var l + 1)) acc c)
      (max 1 p.num_vars) p.clauses
  in
  Obs.Span.with_ "inproc.run"
    ~attrs:[ ("clauses", Obs.Int (List.length p.clauses)); ("vars", Obs.Int nvars) ]
  @@ fun () ->
  Obs.Metrics.incr c_runs;
  let st =
    {
      cfg;
      nvars;
      univs = p.univs;
      deps = Hashtbl.create 64;
      arena = Array.make (max 16 (List.length p.clauses)) dummy_cls;
      n = 0;
      value = Array.make nvars (-1);
      sub = Array.init nvars L.of_var;
      occ = Array.make (2 * nvars) [];
      occ_irred = Array.make (2 * nvars) 0;
      occ_red = Array.make (2 * nvars) 0;
      steps = [];
      units = 0;
      reduced_lits = 0;
      scc_merges = 0;
      subsumed = 0;
      strengthened = 0;
      failed_lits = 0;
      bve_eliminated = 0;
    }
  in
  List.iter (fun (y, d) -> Hashtbl.replace st.deps y d) p.deps;
  (* variables appearing in clauses but declared nowhere are existential
     with no dependencies, mirroring Pcnf.to_formula *)
  List.iter
    (fun c ->
      List.iter
        (fun l ->
          let v = L.var l in
          if (not (is_univ st v)) && not (is_exist st v) then
            Hashtbl.replace st.deps v Bitset.empty)
        c)
    p.clauses;
  List.iter (fun c -> ignore (add_clause st (List.sort_uniq Int.compare c))) p.clauses;
  let clauses_before = List.length p.clauses in
  let lits_before = List.fold_left (fun acc c -> acc + List.length c) 0 p.clauses in
  let vars_before = Hashtbl.length st.deps + Bitset.cardinal st.univs in
  match
    let rounds = ref 0 in
    let continue_ = ref (cfg.max_rounds > 0) in
    while !continue_ && !rounds < cfg.max_rounds do
      incr rounds;
      let ch = ref (simplify st) in
      if cfg.equivalences && scc_pass st then begin
        ignore (simplify st);
        ch := true
      end;
      if cfg.subsumption || cfg.self_subsumption then begin
        build_occ st;
        if subsume_pass st then begin
          ignore (simplify st);
          ch := true
        end
      end;
      if cfg.probe && probe_pass st then begin
        ignore (simplify st);
        ch := true
      end;
      if cfg.bve then begin
        build_occ st;
        if bve_pass st then begin
          ignore (simplify st);
          ch := true
        end
      end;
      continue_ := !ch
    done;
    !rounds
  with
  | exception Refuted ->
      Obs.Span.event "inproc.done" ~attrs:[ ("refuted", Obs.Bool true) ] ();
      Unsat
  | rounds ->
      let clauses_after, lits_after = live_counts st in
      let clauses = ref [] in
      for i = st.n - 1 downto 0 do
        let c = st.arena.(i) in
        if c.alive then clauses := c.lits :: !clauses
      done;
      let deps =
        Hashtbl.fold (fun y d acc -> (y, d) :: acc) st.deps []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      let stats =
        {
          rounds;
          units = st.units;
          reduced_lits = st.reduced_lits;
          scc_merges = st.scc_merges;
          subsumed = st.subsumed;
          strengthened = st.strengthened;
          failed_lits = st.failed_lits;
          bve_eliminated = st.bve_eliminated;
          clauses_before;
          clauses_after;
          lits_before;
          lits_after;
          vars_before;
          vars_after = Hashtbl.length st.deps + Bitset.cardinal st.univs;
        }
      in
      Obs.Metrics.incr ~by:st.units c_units;
      Obs.Metrics.incr ~by:st.scc_merges c_merges;
      Obs.Metrics.incr ~by:st.subsumed c_subsumed;
      Obs.Metrics.incr ~by:st.strengthened c_strengthened;
      Obs.Metrics.incr ~by:st.failed_lits c_failed;
      Obs.Metrics.incr ~by:st.bve_eliminated c_bve;
      Obs.Metrics.incr ~by:(max 0 (clauses_before - clauses_after)) c_clauses_removed;
      Obs.Metrics.incr ~by:(max 0 (lits_before - lits_after)) c_lits_removed;
      Obs.Span.event "inproc.done"
        ~attrs:
          [
            ("rounds", Obs.Int rounds);
            ("units", Obs.Int st.units);
            ("merges", Obs.Int st.scc_merges);
            ("subsumed", Obs.Int st.subsumed);
            ("strengthened", Obs.Int st.strengthened);
            ("bve", Obs.Int st.bve_eliminated);
            ("clauses_after", Obs.Int clauses_after);
          ]
        ();
      Simplified
        { clauses = !clauses; univs = st.univs; deps; steps = List.rev st.steps; stats }
