(** Occurrence-indexed CNF inprocessing engine, DQBF-aware.

    A fixpoint simplification pass over a prefixed CNF, run between
    parsing and AIG construction. The machinery follows the classic SAT
    inprocessing playbook — clause arena with per-literal occurrence
    lists, a binary implication graph (BIG) whose Tarjan SCCs drive
    equivalence substitution, signature-based subsumption and
    self-subsumption strengthening, failed-literal probing on BIG roots,
    and bounded variable elimination — each rule adapted to Henkin
    (DQBF) semantics:

    - a unit over a universal variable refutes the formula;
    - merging two equivalent existentials intersects their dependency
      sets; two universals forced equal, or an existential forced equal
      to a universal outside its dependency set, refute;
    - bounded variable elimination of an existential [y] is only
      performed when it is {e Henkin-legal}: every other variable in a
      clause containing [y] must be dependency-below [y] (universal [v]:
      [v] in [D_y]; existential [v]: [D_v] subset of [D_y]), so the
      reconstruction function for [y] — and every resolvent — never
      widens a dependency requirement.

    The engine operates on raw clause data ({!Sat.Lit}-encoded literals,
    variables as integers, dependency sets as {!Hqs_util.Bitset.t}) so
    it sits below [lib/dqbf]; [Dqbf.Preprocess] converts from and back
    to [Pcnf.t] and replays the returned {!step} witnesses into the
    Skolem model trail. Every deletion, strengthening, merge and
    elimination is reported as a step so [Check.audit_inproc] can
    validate the run structurally (and semantically at [--check full]). *)

type mode = Off | On | Full
(** [Off]: engine disabled. [On] (default): unit propagation, universal
    reduction, BIG/SCC equivalence substitution, subsumption and
    self-subsumption. [Full]: additionally failed-literal probing on BIG
    roots and Henkin-legal bounded variable elimination. *)

val mode_name : mode -> string

val mode_of_string : string -> mode option
(** Accepts "off"/"0", "on"/"1", "full"/"2" (case-insensitive). *)

val mode_of_env : unit -> (mode, string) result
(** Reads [HQS_INPROC]; unset or empty means the default mode [On]. *)

val default_mode : mode

type config = {
  unit_propagation : bool;
  universal_reduction : bool;
  equivalences : bool;  (** BIG + Tarjan SCC substitution *)
  subsumption : bool;
  self_subsumption : bool;
  probe : bool;  (** failed-literal probing on BIG roots *)
  bve : bool;  (** Henkin-legal bounded variable elimination *)
  max_rounds : int;
  bve_cap : int;  (** skip eliminations with more than this many resolvent pairs *)
}

val config_of_mode : mode -> config

type problem = {
  num_vars : int;
  univs : Hqs_util.Bitset.t;
  deps : (int * Hqs_util.Bitset.t) list;  (** existential -> dependency set *)
  clauses : int list list;  (** {!Sat.Lit}-encoded *)
}

(** Auditable witness of one rule application, in chronological order.
    All literals are {!Sat.Lit}-encoded; clause fields are snapshots of
    the clause at the time the rule fired. *)
type step =
  | Unit of int  (** literal propagated to true (existential variable) *)
  | Reduced of { clause : int list; dropped : int list }
      (** universal reduction removed [dropped] from [clause] *)
  | Merged of { y : int; rep : int }
      (** equivalence substitution: existential [y] := literal [rep] *)
  | Subsumed of { clause : int list; by : int list }
  | Strengthened of { clause : int list; removed : int; by : int list }
      (** self-subsumption: [removed] deleted from [clause], witnessed by
          the partner clause [by] containing its negation *)
  | Eliminated of {
      y : int;
      dep_y : int list;  (** dependency set of [y] at elimination time *)
      pos : int list list;  (** clauses containing [y] positively *)
      neg : int list list;  (** clauses containing [y] negatively *)
    }
      (** bounded variable elimination by resolution on [y]; the [pos]
          side is the reconstruction basis for the Skolem function of
          [y] *)

type stats = {
  rounds : int;
  units : int;
  reduced_lits : int;
  scc_merges : int;
  subsumed : int;
  strengthened : int;
  failed_lits : int;
  bve_eliminated : int;
  clauses_before : int;
  clauses_after : int;
  lits_before : int;
  lits_after : int;
  vars_before : int;
  vars_after : int;
}

type result = {
  clauses : int list list;  (** simplified clause set, {!Sat.Lit}-encoded *)
  univs : Hqs_util.Bitset.t;
  deps : (int * Hqs_util.Bitset.t) list;
      (** surviving existentials with (possibly intersected) dependency
          sets, sorted by variable *)
  steps : step list;  (** chronological *)
  stats : stats;
}

type outcome = Unsat | Simplified of result

val run : ?config:config -> problem -> outcome
(** Run the fixpoint engine. [Unsat] means a rule refuted the formula
    (empty clause, universal unit, illegal merge, failed universal
    literal). The default config is [config_of_mode On]. *)
