(* Solve certificates: a self-contained text artifact a third party can
   re-check without trusting any solver code. SAT answers carry the
   Skolem functions as a closed AIG over the universals (Definition 2
   turns verification into one SAT call: substitute and refute the
   negation); UNSAT answers carry the full universal expansion whose
   propositional core is unsatisfiable. Anything we cannot re-derive
   under budget is marked UNCERTIFIED with the reason — never silently
   dropped. The grammar is kept small enough for [bin/certcheck] to
   re-parse with zero library code; both sides of every encoding choice
   (1-based variables, lit = 2*node + complement, node 0 = false,
   topological node numbering) live in DESIGN.md §15. *)

open Hqs_util
module M = Aig.Man
module Sk = Dqbf.Skolem
module Pcnf = Dqbf.Pcnf
module IntSet = Set.Make (Int)

type aig = {
  num_nodes : int;
  inputs : (int * int) list;
  gates : (int * int * int) list;
  outputs : (int * int) list;
}

type body = Sat_cert of aig | Unsat_cert of int list list | Uncertified of string

type t = {
  fingerprint : string;
  univs : int list;
  deps : (int * int list) list;
  body : body;
}

let c_emitted = Obs.Metrics.counter "cert.emitted"
let c_uncertified = Obs.Metrics.counter "cert.uncertified"
let c_checked = Obs.Metrics.counter "cert.checked"

let fingerprint s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let status t =
  match t.body with
  | Sat_cert _ -> "SAT"
  | Unsat_cert _ -> "UNSAT"
  | Uncertified _ -> "UNCERTIFIED"

let inconsistent_reason = "expansion satisfiable"

let is_inconsistent t =
  match t.body with
  | Uncertified r -> String.starts_with ~prefix:inconsistent_reason r
  | Sat_cert _ | Unsat_cert _ -> false

(* The formula builder promotes every undeclared variable to an
   existential with empty dependencies (Pcnf.to_formula); the
   certificate header must list the same effective prefix or the two
   sides would disagree about which variables need Skolem functions. *)
let effective_exists (p : Pcnf.t) =
  let declared = Bitset.of_list (p.Pcnf.univs @ List.map fst p.Pcnf.exists) in
  let extra = ref [] in
  for v = p.Pcnf.num_vars - 1 downto 0 do
    if not (Bitset.mem v declared) then extra := (v, []) :: !extra
  done;
  p.Pcnf.exists @ !extra

let header_of_pcnf ~instance_text (p : Pcnf.t) =
  let univs = List.sort Int.compare (List.map (fun u -> u + 1) p.Pcnf.univs) in
  let deps =
    effective_exists p
    |> List.map (fun (y, ds) -> (y + 1, List.sort Int.compare (List.map (fun x -> x + 1) ds)))
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  (fingerprint instance_text, univs, deps)

(* ------------------------------------------------------- SAT emission *)

(* Close the Skolem model over the universals: a definition may mention
   another defined existential (the preprocessor's reconstruction trail
   does this); substitute those references through so the exported cones
   read only universal inputs. Cycles (which a sound trail never has)
   degrade to keeping the reference as a plain input — the checker then
   rejects the support honestly instead of us looping. *)
let close_model (p : Pcnf.t) model =
  let sman = Sk.man model in
  let cman = M.create () in
  let existential = Hashtbl.create 16 in
  List.iter (fun (y, _) -> Hashtbl.replace existential y ()) (effective_exists p);
  let closed : (int, M.lit) Hashtbl.t = Hashtbl.create 16 in
  let visiting : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec close_var y =
    match Hashtbl.find_opt closed y with
    | Some l -> Some l
    | None ->
        if Hashtbl.mem visiting y then None
        else
          match Sk.find model y with
          | None -> None
          | Some root ->
              Hashtbl.replace visiting y ();
              M.iter_cone sman [ root ] (fun n ->
                  if n <> 0 && M.is_input sman (2 * n) then begin
                    let v = M.var_of_input sman (2 * n) in
                    if Hashtbl.mem existential v then ignore (close_var v)
                  end);
              let table = Hashtbl.create 64 in
              let get e = M.apply_sign (Hashtbl.find table (M.node_of e)) ~neg:(M.is_compl e) in
              M.iter_cone sman [ root ] (fun n ->
                  let v =
                    if n = 0 then M.false_
                    else if M.is_input sman (2 * n) then begin
                      let var = M.var_of_input sman (2 * n) in
                      match
                        if Hashtbl.mem existential var then Hashtbl.find_opt closed var else None
                      with
                      | Some l -> l
                      | None -> M.input cman var
                    end
                    else begin
                      let e0, e1 = M.fanins sman (2 * n) in
                      M.mk_and cman (get e0) (get e1)
                    end
                  in
                  Hashtbl.replace table n v);
              Hashtbl.remove visiting y;
              let l = get root in
              Hashtbl.replace closed y l;
              Some l
  in
  let outs =
    List.map
      (fun (y, _) -> (y, match close_var y with Some l -> l | None -> M.false_))
      (effective_exists p)
  in
  (cman, outs)

let export cman outs =
  let node_id = Hashtbl.create 64 in
  Hashtbl.replace node_id 0 0;
  let next = ref 1 in
  let inputs = ref [] in
  let gates = ref [] in
  let tr e = (2 * Hashtbl.find node_id (M.node_of e)) + if M.is_compl e then 1 else 0 in
  M.iter_cone cman (List.map snd outs) (fun n ->
      if n <> 0 then begin
        let id = !next in
        incr next;
        Hashtbl.replace node_id n id;
        if M.is_input cman (2 * n) then inputs := (id, M.var_of_input cman (2 * n) + 1) :: !inputs
        else begin
          let e0, e1 = M.fanins cman (2 * n) in
          gates := (id, tr e0, tr e1) :: !gates
        end
      end);
  {
    num_nodes = !next;
    inputs = List.rev !inputs;
    gates = List.rev !gates;
    outputs = List.map (fun (y, l) -> (y + 1, tr l)) outs;
  }

let of_skolem ~instance_text p model =
  Obs.Span.with_ "cert.emit" (fun () ->
      let fp, univs, deps = header_of_pcnf ~instance_text p in
      let cman, outs = close_model p model in
      let aig = export cman outs in
      Obs.Metrics.incr c_emitted;
      { fingerprint = fp; univs; deps; body = Sat_cert aig })

(* ----------------------------------------------------- UNSAT emission *)

(* All 2^n assignments over the (0-based) universal list, each as a
   (variable, polarity) list in a fixed order. *)
let enumerate univs =
  let arr = Array.of_list univs in
  let n = Array.length arr in
  List.init (1 lsl n) (fun bits ->
      Array.to_list (Array.mapi (fun i v -> (v, bits land (1 lsl i) <> 0)) arr))

type refute_result = Refuted | Not_refuted | Gave_up of string

(* Propositional core of the expansion: for each universal assignment A,
   instantiate every clause (universal literals become constants) and
   rename each existential y to the copy keyed by (y, A restricted to
   dep(y)) — the same variable across assignments that agree on the
   Henkin set, which is exactly what makes the expansion equisatisfiable
   with the DQBF. Assignments must be total over the universals (the
   structural check guarantees it before we are called).
   Raises Budget.Timeout if the budget expires mid-refutation. *)
let refute_expansion ?budget (p : Pcnf.t) (assigns : (int * bool) list list) =
  let deps = Hashtbl.create 16 in
  List.iter
    (fun (y, ds) -> Hashtbl.replace deps y (List.sort Int.compare ds))
    (effective_exists p);
  let solver = Sat.Solver.create () in
  let next = ref 0 in
  let copies = Hashtbl.create 64 in
  let contradiction = ref false in
  List.iter
    (fun assign ->
      let env = Hashtbl.create 16 in
      List.iter (fun (v, b) -> Hashtbl.replace env v b) assign;
      let copy_of y =
        let ds = match Hashtbl.find_opt deps y with Some l -> l | None -> [] in
        let key =
          string_of_int y ^ ":"
          ^ String.concat ""
              (List.map
                 (fun x ->
                   match Hashtbl.find_opt env x with Some true -> "1" | Some false | None -> "0")
                 ds)
        in
        match Hashtbl.find_opt copies key with
        | Some v -> v
        | None ->
            let v = !next in
            incr next;
            Sat.Solver.ensure_var solver v;
            Hashtbl.replace copies key v;
            v
      in
      List.iter
        (fun clause ->
          let sat_clause = ref [] in
          let satisfied = ref false in
          List.iter
            (fun l ->
              let v = abs l - 1 in
              let neg = l < 0 in
              match Hashtbl.find_opt env v with
              | Some b -> if b <> neg then satisfied := true
              | None -> sat_clause := Sat.Lit.mk (copy_of v) ~neg :: !sat_clause)
            clause;
          if not !satisfied then
            match !sat_clause with
            | [] -> contradiction := true
            | c -> Sat.Solver.add_clause solver c)
        p.Pcnf.clauses)
    assigns;
  if !contradiction then Refuted
  else
    match Sat.Solver.solve ?budget solver with
    | Sat.Solver.Unsat -> Refuted
    | Sat.Solver.Sat -> Not_refuted
    | Sat.Solver.Unknown -> Gave_up "refutation inconclusive"

let of_unsat ?(budget = Budget.unlimited) ?(max_univs = 12) ~instance_text p =
  Obs.Span.with_ "cert.emit" (fun () ->
      let fp, univs, deps = header_of_pcnf ~instance_text p in
      let mk body = { fingerprint = fp; univs; deps; body } in
      let n = List.length p.Pcnf.univs in
      if n > max_univs then begin
        Obs.Metrics.incr c_uncertified;
        mk
          (Uncertified
             (Printf.sprintf "expansion too large: %d universals exceed the %d cap" n max_univs))
      end
      else
        let assigns = enumerate (List.sort Int.compare p.Pcnf.univs) in
        match refute_expansion ~budget:(Budget.sub ~frac:0.25 budget) p assigns with
        | Refuted ->
            Obs.Metrics.incr c_emitted;
            mk
              (Unsat_cert
                 (List.map
                    (fun a -> List.map (fun (v, b) -> if b then v + 1 else -(v + 1)) a)
                    assigns))
        | Not_refuted ->
            Obs.Metrics.incr c_uncertified;
            mk
              (Uncertified
                 (inconsistent_reason ^ " under full enumeration: the UNSAT verdict is suspect"))
        | Gave_up reason ->
            Obs.Metrics.incr c_uncertified;
            mk (Uncertified reason)
        | exception Budget.Timeout ->
            Obs.Metrics.incr c_uncertified;
            mk (Uncertified "refutation budget exhausted"))

(* ---------------------------------------------------------- rendering *)

let render t =
  let buf = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let ints = function [] -> "" | l -> String.concat " " (List.map string_of_int l) ^ " " in
  line "c hqs certificate";
  line "s cert %s" (status t);
  line "h %s" t.fingerprint;
  line "a %s0" (ints t.univs);
  List.iter (fun (y, ds) -> line "d %d %s0" y (ints ds)) t.deps;
  (match t.body with
  | Sat_cert a ->
      line "n %d" a.num_nodes;
      let nodes =
        List.map (fun (nd, u) -> (nd, `I u)) a.inputs
        @ List.map (fun (nd, f0, f1) -> (nd, `G (f0, f1))) a.gates
        |> List.sort (fun (x, _) (y, _) -> Int.compare x y)
      in
      List.iter
        (function
          | nd, `I u -> line "i %d %d" nd u
          | nd, `G (f0, f1) -> line "g %d %d %d" nd f0 f1)
        nodes;
      List.iter (fun (y, l) -> line "o %d %d" y l) a.outputs
  | Unsat_cert lines ->
      line "x %d" (List.length lines);
      List.iter (fun l -> line "u %s0" (ints l)) lines
  | Uncertified reason -> line "r %s" reason);
  Buffer.contents buf

(* ------------------------------------------------------------ parsing *)

exception Parse_error of string

let parse text =
  let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt in
  let int_of s =
    match int_of_string_opt s with Some i -> i | None -> fail "not an integer: %s" s
  in
  let zero_terminated toks =
    let rec split acc = function
      | [ "0" ] -> List.rev acc
      | [] -> fail "missing 0 terminator"
      | tk :: rest -> split (int_of tk :: acc) rest
    in
    split [] toks
  in
  try
    let stat = ref "" in
    let fp = ref "" in
    let univs = ref None in
    let deps = ref [] in
    let num_nodes = ref 0 in
    let inputs = ref [] in
    let gates = ref [] in
    let outputs = ref [] in
    let xcount = ref (-1) in
    let ulines = ref [] in
    let reason = ref None in
    List.iteri
      (fun i line ->
        let toks =
          String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")
        in
        match toks with
        | [] -> ()
        | "c" :: _ -> ()
        | [ "s"; "cert"; st ] -> stat := st
        | [ "h"; h ] -> fp := String.lowercase_ascii h
        | "a" :: rest -> univs := Some (zero_terminated rest)
        | "d" :: y :: rest -> deps := (int_of y, zero_terminated rest) :: !deps
        | [ "n"; k ] -> num_nodes := int_of k
        | [ "i"; nd; u ] -> inputs := (int_of nd, int_of u) :: !inputs
        | [ "g"; nd; a; b ] -> gates := (int_of nd, int_of a, int_of b) :: !gates
        | [ "o"; y; l ] -> outputs := (int_of y, int_of l) :: !outputs
        | [ "x"; k ] -> xcount := int_of k
        | "u" :: rest -> ulines := zero_terminated rest :: !ulines
        | "r" :: rest -> reason := Some (String.concat " " rest)
        | _ -> fail "line %d: unrecognized" (i + 1))
      (String.split_on_char '\n' text);
    if String.length !fp = 0 then fail "missing h line";
    let univs = match !univs with Some u -> List.sort Int.compare u | None -> fail "missing a line" in
    let deps =
      List.rev_map (fun (y, ds) -> (y, List.sort Int.compare ds)) !deps
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    let body =
      match !stat with
      | "SAT" ->
          let inputs = List.rev !inputs in
          let gates = List.rev !gates in
          let n = !num_nodes in
          if n < 1 then fail "SAT certificate without a node count";
          if List.length inputs + List.length gates <> n - 1 then
            fail "node count disagrees with the i/g lines";
          let seen = Array.make n false in
          let def nd =
            if nd < 1 || nd >= n then fail "node id %d out of range" nd;
            if seen.(nd) then fail "node %d defined twice" nd;
            seen.(nd) <- true
          in
          List.iter (fun (nd, _) -> def nd) inputs;
          let lit_ok l = l >= 0 && l < 2 * n in
          List.iter
            (fun (nd, f0, f1) ->
              def nd;
              if not (lit_ok f0 && lit_ok f1) then fail "gate %d: fanin literal out of range" nd;
              if f0 / 2 >= nd || f1 / 2 >= nd then
                fail "gate %d references a node not yet defined" nd)
            gates;
          let outputs = List.rev !outputs in
          if outputs = [] then fail "SAT certificate without outputs";
          List.iter
            (fun (y, l) ->
              if y < 1 then fail "output for non-positive variable %d" y;
              if not (lit_ok l) then fail "output of %d: literal out of range" y)
            outputs;
          Sat_cert { num_nodes = n; inputs; gates; outputs }
      | "UNSAT" ->
          let lines = List.rev !ulines in
          if !xcount <> List.length lines then fail "x count disagrees with the u lines";
          Unsat_cert lines
      | "UNCERTIFIED" -> (
          match !reason with
          | Some r -> Uncertified r
          | None -> fail "UNCERTIFIED certificate without an r line")
      | "" -> fail "missing s cert line"
      | st -> fail "unknown certificate status %s" st
    in
    Ok { fingerprint = !fp; univs; deps; body }
  with Parse_error msg -> Error msg

let write_file path t =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (render t))

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | content -> parse content
  | exception Sys_error msg -> Error msg

(* ----------------------------------------------------------- checking *)

let subset a b = List.for_all (fun x -> List.mem x b) a

(* Per-node universal support of the certificate AIG, by one pass in
   node order (gates only reference smaller ids, enforced at parse). *)
let aig_supports aig =
  let sup = Array.make aig.num_nodes IntSet.empty in
  List.iter (fun (nd, u) -> sup.(nd) <- IntSet.singleton u) aig.inputs;
  List.iter
    (fun (nd, f0, f1) -> sup.(nd) <- IntSet.union sup.(f0 / 2) sup.(f1 / 2))
    (List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) aig.gates);
  sup

let check_structural ~instance_text (p : Pcnf.t) t =
  let fp, iunivs, ideps = header_of_pcnf ~instance_text p in
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  try
    if not (String.equal fp t.fingerprint) then
      fail "fingerprint mismatch: instance %s, certificate %s" fp t.fingerprint;
    if not (List.equal Int.equal iunivs t.univs) then fail "universal sets differ";
    if not (List.equal Int.equal (List.map fst ideps) (List.map fst t.deps)) then
      fail "existential sets differ";
    List.iter
      (fun (y, ds) ->
        let inst = match List.assoc_opt y ideps with Some l -> l | None -> [] in
        if not (subset ds inst) then
          fail "declared dependencies of %d exceed the instance's" y)
      t.deps;
    (match t.body with
    | Uncertified _ -> ()
    | Unsat_cert lines ->
        if lines = [] then fail "empty expansion refutation";
        List.iter
          (fun l ->
            let vars = List.sort Int.compare (List.map abs l) in
            if not (List.equal Int.equal vars iunivs) then
              fail "an expansion line does not assign exactly the universals")
          lines
    | Sat_cert aig ->
        let uset = IntSet.of_list iunivs in
        List.iter
          (fun (_, u) ->
            if not (IntSet.mem u uset) then fail "input labeled with non-universal %d" u)
          aig.inputs;
        if not (List.equal Int.equal (List.map fst t.deps) (List.map fst aig.outputs
                                                           |> List.sort_uniq Int.compare))
        then fail "outputs do not cover exactly the existentials";
        let sup = aig_supports aig in
        List.iter
          (fun (y, l) ->
            let declared =
              IntSet.of_list (match List.assoc_opt y t.deps with Some d -> d | None -> [])
            in
            IntSet.iter
              (fun u ->
                if not (IntSet.mem u declared) then
                  fail "Skolem output of %d depends on %d outside its declared set" y u)
              sup.(l / 2))
          aig.outputs);
    Ok ()
  with Bad msg -> Error msg

let to_skolem aig =
  let sk = Sk.create () in
  let m = Sk.man sk in
  let lit_of = Array.make aig.num_nodes M.false_ in
  List.iter (fun (nd, u) -> lit_of.(nd) <- M.input m (u - 1)) aig.inputs;
  let tr l = M.apply_sign lit_of.(l / 2) ~neg:(l land 1 = 1) in
  List.iter
    (fun (nd, f0, f1) -> lit_of.(nd) <- M.mk_and m (tr f0) (tr f1))
    (List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) aig.gates);
  List.iter (fun (y, l) -> Sk.define sk (y - 1) (tr l)) aig.outputs;
  sk

let check ?(budget = Budget.unlimited) ~instance_text p t =
  Obs.Span.with_ "cert.check" (fun () ->
      Obs.Metrics.incr c_checked;
      match check_structural ~instance_text p t with
      | Error _ as e -> e
      | Ok () -> (
          match t.body with
          | Uncertified _ ->
              if is_inconsistent t then
                Error "certificate marks the verdict itself as inconsistent"
              else Ok ()
          | Sat_cert aig -> (
              let sk = to_skolem aig in
              match Sk.verify ~budget (Pcnf.to_formula p) sk with
              | Ok () -> Ok ()
              | Error f -> Error (Format.asprintf "%a" Sk.pp_failure f))
          | Unsat_cert lines -> (
              let assigns =
                List.map (fun l -> List.map (fun lit -> (abs lit - 1, lit > 0)) l) lines
              in
              match refute_expansion ~budget p assigns with
              | Refuted -> Ok ()
              | Not_refuted -> Error "expansion refutation does not hold: expansion is satisfiable"
              | Gave_up r -> Error r)))
