(** Externally checkable solve certificates (the robustness half of
    Reichl/Slivovsky/Szeider's "Certified DQBF Solving by Definition
    Extraction").

    A certificate is a self-contained text artifact tied to one instance
    by a fingerprint of its bytes:

    - SAT: a Skolem-AIG — inputs are the instance's universal variables,
      one output per existential, the declared Henkin sets in the header.
      Definition 2 of the paper makes verification a pure SAT question:
      the matrix with every existential replaced by its Skolem output
      must be a universal tautology.
    - UNSAT: a universal-expansion refutation — the full list of
      universal assignments whose expansion (existentials copied per
      assignment restricted to their dependency set) is propositionally
      unsatisfiable. Any subset of the full expansion being UNSAT is
      already sound evidence; we emit the full enumeration so the
      checker needs no completeness argument.
    - UNCERTIFIED: an explicit marker with a reason — large UNSAT
      instances where re-deriving the expansion under the sub-budget is
      hopeless never get a silent gap, they get a visible one.

    The artifact grammar is deliberately tiny so that [bin/certcheck]
    can re-parse it with no solver library code (see DESIGN.md §15):

    {v
    c <comment>
    s cert SAT|UNSAT|UNCERTIFIED
    h <fnv64-hex of the instance bytes>
    a u1 u2 ... 0                  (universal variables, 1-based)
    d y x1 ... xk 0                (one per existential: declared deps)
    -- SAT body --
    n <num_nodes>                  (node 0 is constant false)
    i <node> <uvar>                (input node, labeled by a universal)
    g <node> <lit0> <lit1>         (AND gate; lit = 2*node + complement)
    o <y> <lit>                    (Skolem output of existential y)
    -- UNSAT body --
    x <count>
    u l1 ... lk 0                  (one full universal assignment each)
    -- UNCERTIFIED body --
    r <reason>
    v}
    Nodes are numbered contiguously from 1 in topological order (a gate
    only references smaller node ids). *)

type aig = {
  num_nodes : int;  (** node ids are [0 .. num_nodes - 1]; 0 is false *)
  inputs : (int * int) list;  (** node, universal variable (1-based) *)
  gates : (int * int * int) list;  (** node, fanin lits (2*node + sign) *)
  outputs : (int * int) list;  (** existential (1-based), root literal *)
}

type body =
  | Sat_cert of aig
  | Unsat_cert of int list list
      (** one full universal assignment per line, signed 1-based *)
  | Uncertified of string  (** reason; no silent gaps *)

type t = {
  fingerprint : string;  (** FNV-1a 64 of the instance bytes, lowercase hex *)
  univs : int list;  (** 1-based, sorted *)
  deps : (int * int list) list;  (** existential -> declared deps, 1-based *)
  body : body;
}

val fingerprint : string -> string
(** FNV-1a 64 of a byte string, 16 lowercase hex digits. *)

val status : t -> string
(** ["SAT"], ["UNSAT"] or ["UNCERTIFIED"]. *)

val inconsistent_reason : string
(** The reason prefix {!of_unsat} uses when the full expansion turned
    out {e satisfiable} — i.e. the UNSAT verdict itself is suspect. The
    [Full]-level audit treats such an artifact as a violation rather
    than an honest capacity gap. *)

val is_inconsistent : t -> bool

val of_skolem : instance_text:string -> Dqbf.Pcnf.t -> Dqbf.Skolem.t -> t
(** SAT certificate from a Skolem model: each existential's cone is
    exported (Skolem functions referencing other defined existentials
    are substituted through, so the artifact is closed over universals);
    an existential the model leaves undefined gets constant false and
    the checker decides. *)

val of_unsat :
  ?budget:Hqs_util.Budget.t -> ?max_univs:int -> instance_text:string -> Dqbf.Pcnf.t -> t
(** UNSAT certificate by full universal expansion, re-derived and
    confirmed with an internal SAT refutation under a [frac:0.25]
    sub-budget. More than [max_univs] universals (default 12), a budget
    timeout, or an inconclusive refutation yield [Uncertified] with the
    reason spelled out. *)

val render : t -> string
val parse : string -> (t, string) result
(** Inverse of {!render}; also accepts foreign artifacts in the same
    grammar. Structural sanity (node numbering, gate ordering, literal
    ranges) is enforced here. *)

val write_file : string -> t -> unit
val read_file : string -> (t, string) result

val check_structural : instance_text:string -> Dqbf.Pcnf.t -> t -> (unit, string) result
(** The cheap half of {!check}: fingerprint match, header/prefix
    agreement (same universal and existential sets, declared deps a
    subset of the instance's), Skolem outputs structurally supported
    only by their declared deps, UNSAT assignment lines total over the
    universals. No SAT solving. *)

val check :
  ?budget:Hqs_util.Budget.t -> instance_text:string -> Dqbf.Pcnf.t -> t -> (unit, string) result
(** {!check_structural} plus the semantic question: SAT certificates are
    rebuilt into a {!Dqbf.Skolem.t} and verified as a universal
    tautology against the instance matrix; UNSAT certificates have
    their expansion refuted with the library SAT solver. [Uncertified]
    artifacts pass (they claim nothing) unless {!is_inconsistent}. *)
