module Json = Obs.Json

type entry = { task_id : string; data : Json.t }

(* FNV-1a over 64-bit-ish OCaml ints, masked to stay positive and
   identical across runs; the same construction Chaos uses for point
   streams. The offset basis is the standard 64-bit one truncated to
   OCaml's 63-bit int range. *)
let checksum s =
  let h = ref 0x4bf29ce484222325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3 land max_int) s;
  Printf.sprintf "%015x" !h

let encode_line { task_id; data } =
  let body = Json.render (Json.Obj [ ("id", Json.Str task_id); ("data", data) ]) in
  Printf.sprintf "{\"c\":\"%s\",\"e\":%s}" (checksum body) body

let decode_line line =
  match Json.parse line with
  | Error msg -> Error ("unparseable line: " ^ msg)
  | Ok v -> (
      match (Json.member "c" v, Json.member "e" v) with
      | Some (Json.Str c), Some e -> (
          let body = Json.render e in
          if c <> checksum body then Error "checksum mismatch"
          else
            match (Json.member "id" e, Json.member "data" e) with
            | Some (Json.Str task_id), Some data -> Ok { task_id; data }
            | _ -> Error "missing id/data fields")
      | _ -> Error "missing checksum envelope")

(* ------------------------------------------------------------- appending *)

type t = { fd : Unix.file_descr; path : string }

let path t = t.path

let open_append path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  { fd; path }

(* crash safety: the full line is built in memory and handed to the
   kernel as a single append [write], then fsynced — a parent killed
   mid-append leaves at most one torn trailing line, which the per-line
   checksum rejects on load *)
let append t entry =
  let line = Bytes.of_string (encode_line entry ^ "\n") in
  Ipc.write_all t.fd line;
  Unix.fsync t.fd

let close t = Unix.close t.fd

(* --------------------------------------------------------------- loading *)

type load = { entries : entry list; dropped : int }

let load path =
  if not (Sys.file_exists path) then { entries = []; dropped = 0 }
  else begin
    let content = In_channel.with_open_bin path In_channel.input_all in
    let lines = String.split_on_char '\n' content in
    let entries, dropped =
      List.fold_left
        (fun (acc, dropped) line ->
          if String.trim line = "" then (acc, dropped)
          else
            match decode_line line with
            | Ok e -> (e :: acc, dropped)
            | Error _ -> (acc, dropped + 1))
        ([], 0) lines
    in
    { entries = List.rev entries; dropped }
  end
