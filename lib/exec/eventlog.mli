(** Size-rotated structured JSONL event log for long-running processes
    (the serve daemon's [--event-log]).

    One line per lifecycle event — admissions, sheds, worker crashes,
    retries, quarantines, cache audits, timeouts, drains — in the same
    checksummed envelope as the resume journal:
    [{"c":"<fnv64-hex>","e":{"seq":N,"ts":S,"ev":"<kind>","trace":"<id>",...}}]
    where ["ts"] is the monotonic Budget clock and ["trace"] (when
    present) is the request's trace id, so log lines can be correlated
    against the Chrome trace of the same run.

    Crash safety matches {!Journal}: one [O_APPEND] write plus fsync per
    line, so a writer killed mid-append leaves at most one torn trailing
    line, which {!load} skips (and counts) via the checksum. When a line
    would push the file past [max_bytes], the file is first renamed to
    [path ^ ".1"] (replacing the previous rotation) and a fresh one is
    started — disk use is bounded by roughly two generations. I/O errors
    on append are swallowed: a full disk must not take the daemon down. *)

type t

val create : ?max_bytes:int -> string -> t
(** Open (creating if missing, appending if present) a log at the path;
    [max_bytes] defaults to 1 MiB. Raises [Invalid_argument] when
    [max_bytes <= 0]. *)

val log : t -> event:string -> ?trace_id:string -> ?fields:(string * Obs.Json.t) list -> unit -> unit
(** Append one event line (rotating first if needed): [event] is the
    kind tag, [fields] extra key/values spliced into the envelope. *)

val close : t -> unit

val rotated_path : string -> string
(** Where rotation moves the previous generation ([path ^ ".1"]). *)

type load = { events : Obs.Json.t list; dropped : int }

val load : string -> load
(** All checksum-valid event bodies in file order; [dropped] counts torn
    or corrupt lines. A missing file is an empty load. *)
