(** Worker → supervisor result channel: one length-prefixed JSON frame
    per worker, written to a pipe just before the worker exits.

    The frame is [%010d\n] (payload byte count) followed by exactly that
    many bytes of {!Obs.Json}-rendered payload. The explicit length lets
    the supervisor distinguish a worker that died mid-write (truncated or
    oversized frame → classified as a crash) from one that returned a
    complete result — EOF alone cannot tell the two apart. *)

val write_frame : Unix.file_descr -> Obs.Json.t -> unit
(** Render and write one frame, looping over partial [write]s. *)

val parse_frame : string -> (Obs.Json.t, string) result
(** Parse the complete byte stream read from a worker pipe (up to EOF).
    [Error] describes the protocol violation for the crash log. *)
