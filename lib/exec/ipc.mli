(** Length-prefixed JSON framing over pipes and sockets.

    A frame is [%010d\n] (payload byte count) followed by exactly that
    many bytes of {!Obs.Json}-rendered payload. The explicit length lets
    a reader distinguish a peer that died mid-write (truncated frame →
    classified as a crash) from one that sent a complete message — EOF
    alone cannot tell the two apart.

    Two consumption styles:
    - the sweep supervisor reads a worker pipe to EOF and hands the whole
      buffer to {!parse_frame} (one frame per worker lifetime);
    - the serve daemon keeps persistent connections with many frames in
      flight and decodes incrementally through a {!reader}.

    All reads and writes in this module retry on [EINTR], so signal
    delivery (SIGCHLD, SIGTERM during drain) can never tear a frame. *)

val ignore_sigpipe : unit -> unit
(** Set [SIGPIPE] to ignore, process-wide: a peer that disconnects
    mid-write then surfaces as an [EPIPE] error from [write] instead of
    killing the process. Call once at the top of any long-lived loop
    that writes to pipes or sockets. *)

val retry_read : Unix.file_descr -> Bytes.t -> int -> int -> int
(** [Unix.read], retried on [EINTR]. *)

val retry_write : Unix.file_descr -> Bytes.t -> int -> int -> int
(** [Unix.write], retried on [EINTR]. *)

val write_all : Unix.file_descr -> Bytes.t -> unit
(** Write the whole buffer, looping over partial and interrupted
    writes. Raises the underlying [Unix.Unix_error] on real I/O failure
    (e.g. [EPIPE] once {!ignore_sigpipe} is in effect). *)

val frame_string : Obs.Json.t -> string
(** The on-wire bytes of one frame, for callers that batch writes. *)

val write_frame : Unix.file_descr -> Obs.Json.t -> unit
(** Render and write one frame via {!write_all}. *)

val parse_frame : string -> (Obs.Json.t, string) result
(** Parse a complete byte stream holding exactly one frame (the
    read-to-EOF style). [Error] describes the protocol violation. *)

(** {1 Incremental decoding} *)

type reader
(** Buffers a byte stream and peels complete frames off the front. *)

val reader : unit -> reader

val feed : reader -> Bytes.t -> int -> unit
(** [feed r bytes len] appends the first [len] bytes just read from the
    peer. *)

val next_frame : reader -> (Obs.Json.t, string) result option
(** The next complete frame, if the buffer holds one. [None] means more
    bytes are needed; [Some (Error _)] means the stream is torn and the
    connection should be dropped (decoding cannot resync). *)

type read_result = Frame of Obs.Json.t | Eof | Malformed of string

val read_next : reader -> Unix.file_descr -> read_result
(** Blocking read of the next frame: drains [next_frame], else reads
    more bytes and retries. [Eof] only on a clean frame boundary; EOF
    mid-frame is [Malformed]. *)

val read_frame : Unix.file_descr -> read_result
(** [read_next] with a fresh throwaway reader — for one-shot
    request/reply clients. *)
