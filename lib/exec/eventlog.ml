module Json = Obs.Json

(* Structured operational event log: one checksummed JSONL line per
   daemon/supervisor lifecycle event (admission, shed, crash, retry,
   quarantine, cache audit, drain), with trace ids for correlating log
   lines against the Chrome trace of the same run.

   Same crash-safety contract as the resume journal: each line is built
   in memory, handed to the kernel as a single O_APPEND write, then
   fsynced — a writer killed mid-append leaves at most one torn trailing
   line, which the per-line checksum rejects on load. On top of that the
   log is size-rotated: when a line would push the file past [max_bytes]
   the current file is renamed to [path ^ ".1"] (replacing any previous
   rotation) and a fresh file is started, bounding disk use to roughly
   two generations. *)

type t = {
  path : string;
  max_bytes : int;
  mutable fd : Unix.file_descr;
  mutable size : int;
  mutable seq : int;
}

let default_max_bytes = 1 lsl 20

let rotated_path path = path ^ ".1"

let open_fd path = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644

let create ?(max_bytes = default_max_bytes) path =
  if max_bytes <= 0 then invalid_arg "Eventlog.create: max_bytes must be positive";
  let fd = open_fd path in
  let size = (Unix.fstat fd).Unix.st_size in
  { path; max_bytes; fd; size; seq = 0 }

let encode_line body =
  let rendered = Json.render body in
  Printf.sprintf "{\"c\":\"%s\",\"e\":%s}" (Journal.checksum rendered) rendered

let rotate t =
  Unix.close t.fd;
  (match Unix.rename t.path (rotated_path t.path) with
  | () -> ()
  | exception Unix.Unix_error (_, _, _) -> ());
  t.fd <- open_fd t.path;
  t.size <- 0

let log t ~event ?trace_id ?(fields = []) () =
  t.seq <- t.seq + 1;
  let body =
    Json.Obj
      ([ ("seq", Json.Num (float_of_int t.seq)); ("ts", Json.Num (Hqs_util.Budget.now ())) ]
      @ [ ("ev", Json.Str event) ]
      @ (match trace_id with Some id -> [ ("trace", Json.Str id) ] | None -> [])
      @ fields)
  in
  let line = Bytes.of_string (encode_line body ^ "\n") in
  if t.size > 0 && t.size + Bytes.length line > t.max_bytes then rotate t;
  (match Ipc.write_all t.fd line with
  | () ->
      t.size <- t.size + Bytes.length line;
      (match Unix.fsync t.fd with () -> () | exception Unix.Unix_error (_, _, _) -> ())
  | exception Unix.Unix_error (_, _, _) ->
      (* a full or vanished disk must not take the daemon down *)
      ())

let close t = match Unix.close t.fd with () -> () | exception Unix.Unix_error (_, _, _) -> ()

(* --------------------------------------------------------------- loading *)

type load = { events : Json.t list; dropped : int }

let load path =
  if not (Sys.file_exists path) then { events = []; dropped = 0 }
  else begin
    let content = In_channel.with_open_bin path In_channel.input_all in
    let lines = String.split_on_char '\n' content in
    let events, dropped =
      List.fold_left
        (fun (acc, dropped) line ->
          if String.trim line = "" then (acc, dropped)
          else
            match Json.parse line with
            | Error _ -> (acc, dropped + 1)
            | Ok v -> (
                match (Json.member "c" v, Json.member "e" v) with
                | Some (Json.Str c), Some e when c = Journal.checksum (Json.render e) ->
                    (e :: acc, dropped)
                | _ -> (acc, dropped + 1)))
        ([], 0) lines
    in
    { events = List.rev events; dropped }
  end
