module Json = Obs.Json
module Mono = Hqs_util.Mono

(* ----------------------------------------------------------------- types *)

type status = Value of Json.t | Timeout of float | Memout of float | Crash of float

type completion = {
  task_id : string;
  status : status;
  attempts : int;
  worker_pid : int;
  elapsed_s : float;
  crash_log : string list;
  from_journal : bool;
}

type config = {
  jobs : int;
  limits : Limits.t;
  max_attempts : int;
  backoff : Backoff.policy;
  chaos : Hqs_util.Chaos.t;
}

let default_config =
  {
    jobs = 1;
    limits = Limits.none;
    max_attempts = 3;
    backoff = Backoff.default;
    chaos = Hqs_util.Chaos.off;
  }

type report = {
  completions : completion list;
  executed : int;
  journaled : int;
  journal_dropped : int;
}

(* -------------------------------------------------------- serialization *)

let status_label = function
  | Value _ -> "ok"
  | Timeout _ -> "timeout"
  | Memout _ -> "memout"
  | Crash _ -> "crash"

let samples_to_json samples =
  Json.Arr
    (List.map
       (fun (s : Obs.Metrics.sample) ->
         Json.Obj
           [
             ("n", Json.Str s.name);
             ("k", Json.Str (Obs.Metrics.kind_name s.kind));
             ("v", Json.Num s.v);
           ])
       samples)

let samples_of_json j =
  match Json.to_list j with
  | None -> []
  | Some l ->
      List.filter_map
        (fun item ->
          match
            ( Option.bind (Json.member "n" item) Json.to_string,
              Option.bind (Json.member "k" item) Json.to_string,
              Option.bind (Json.member "v" item) Json.to_number )
          with
          | Some name, Some kind, Some v ->
              Option.map
                (fun kind -> { Obs.Metrics.name; kind; v })
                (Obs.Metrics.kind_of_name kind)
          | _ -> None)
        l

let completion_to_json c =
  Json.Obj
    [
      ("status", Json.Str (status_label c.status));
      ("elapsed_s", Json.Num c.elapsed_s);
      ("attempts", Json.Num (float_of_int c.attempts));
      ("pid", Json.Num (float_of_int c.worker_pid));
      ("value", (match c.status with Value v -> v | Timeout _ | Memout _ | Crash _ -> Json.Null));
      ("log", Json.Arr (List.map (fun s -> Json.Str s) c.crash_log));
    ]

let completion_of_json ~task_id j =
  let num key = Option.bind (Json.member key j) Json.to_number in
  match (Option.bind (Json.member "status" j) Json.to_string, num "elapsed_s") with
  | Some label, Some elapsed_s -> (
      let status =
        match label with
        | "ok" -> Option.map (fun v -> Value v) (Json.member "value" j)
        | "timeout" -> Some (Timeout elapsed_s)
        | "memout" -> Some (Memout elapsed_s)
        | "crash" -> Some (Crash elapsed_s)
        | _ -> None
      in
      match status with
      | None -> None
      | Some status ->
          let log =
            match Option.bind (Json.member "log" j) Json.to_list with
            | None -> []
            | Some l -> List.filter_map Json.to_string l
          in
          Some
            {
              task_id;
              status;
              attempts = (match num "attempts" with Some a -> int_of_float a | None -> 1);
              worker_pid = (match num "pid" with Some p -> int_of_float p | None -> 0);
              elapsed_s;
              crash_log = log;
              from_journal = true;
            })
  | _ -> None

(* ----------------------------------------------------------------- child *)

let run_child config worker payload fd ~task_id ~attempt =
  (* own session => own process group, so the supervisor's wall-clock
     SIGKILL takes out any grandchildren too *)
  (try ignore (Unix.setsid ()) with Unix.Unix_error (_, _, _) -> ());
  Limits.apply_in_child config.limits;
  if Hqs_util.Chaos.fire config.chaos (Hqs_util.Chaos.worker_kill_point ~task:task_id ~attempt)
  then Unix.kill (Unix.getpid ()) Sys.sigkill;
  let before = Obs.Metrics.snapshot () in
  let frame =
    match worker payload with
    | v ->
        let delta = Obs.Metrics.delta ~before ~after:(Obs.Metrics.snapshot ()) in
        Json.Obj [ ("status", Json.Str "ok"); ("value", v); ("metrics", samples_to_json delta) ]
    | exception Stdlib.Out_of_memory ->
        (* the rlimit (or heap governor) said no: a clean memout *)
        Json.Obj [ ("status", Json.Str "memout") ]
    | exception Stack_overflow ->
        Json.Obj [ ("status", Json.Str "error"); ("detail", Json.Str "Stack_overflow") ]
    (* lint: allow catch-all — the fork boundary must convert arbitrary
       worker failures into a classified frame; nothing is swallowed, the
       supervisor re-raises the failure as a crash classification *)
    | exception e ->
        Json.Obj [ ("status", Json.Str "error"); ("detail", Json.Str (Printexc.to_string e)) ]
  in
  (match Ipc.write_frame fd frame with
  | () -> ()
  | exception Unix.Unix_error (_, _, _) -> ());
  (* _exit, not exit: at_exit handlers (inherited channel flushes) must
     not run in the forked copy *)
  Unix._exit 0

(* ---------------------------------------------------------------- parent *)

let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigxcpu then "SIGXCPU"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else Printf.sprintf "signal(%d)" s

let kill_group pid =
  match Unix.kill (-pid) Sys.sigkill with
  | () -> ()
  | exception Unix.Unix_error (_, _, _) -> (
      match Unix.kill pid Sys.sigkill with
      | () -> ()
      | exception Unix.Unix_error (_, _, _) -> ())

type task_state = {
  index : int;
  id : string;
  mutable spawned : int;  (* attempts consumed so far *)
  mutable log : string list;  (* failed-attempt descriptions, newest first *)
  mutable ready_at : float;  (* backoff gate for the next spawn *)
}

type worker_proc = {
  pid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  state : task_state;
  started : float;
  deadline : float;
  mutable wall_killed : bool;
}

let run ?(config = default_config) ?journal ?resume ?on_complete ~worker tasks =
  Ipc.ignore_sigpipe ();
  if config.jobs < 1 then invalid_arg "Supervisor.run: jobs must be >= 1";
  if config.max_attempts < 1 then invalid_arg "Supervisor.run: max_attempts must be >= 1";
  let ids = Hashtbl.create 16 in
  List.iter
    (fun (id, _) ->
      if Hashtbl.mem ids id then invalid_arg ("Supervisor.run: duplicate task id " ^ id);
      Hashtbl.replace ids id ())
    tasks;
  (* resume: every checksum-valid journal line for a known task id is a
     finished task this run must not repeat *)
  let journal_dropped = ref 0 in
  let resumed : (string, completion) Hashtbl.t = Hashtbl.create 16 in
  (match resume with
  | None -> ()
  | Some path ->
      let { Journal.entries; dropped } = Journal.load path in
      journal_dropped := dropped;
      List.iter
        (fun { Journal.task_id; data } ->
          if Hashtbl.mem ids task_id then
            match completion_of_json ~task_id data with
            | Some c -> Hashtbl.replace resumed task_id c
            | None -> incr journal_dropped)
        entries);
  let jnl = Option.map Journal.open_append journal in
  let task_arr = Array.of_list tasks in
  let n = Array.length task_arr in
  let completions : completion option array = Array.make n None in
  let pending = Queue.create () in
  (* tasks whose backoff gate is in the future, kept out of the hot queue *)
  let delayed : task_state list ref = ref [] in
  let running : worker_proc list ref = ref [] in
  let executed = ref 0 in
  Array.iteri
    (fun index (id, _) ->
      match Hashtbl.find_opt resumed id with
      | Some c ->
          completions.(index) <- Some c;
          Option.iter (fun f -> f c) on_complete
      | None -> Queue.add { index; id; spawned = 0; log = []; ready_at = 0.0 } pending)
    task_arr;
  let journaled = n - Queue.length pending in
  let finalize state status pid elapsed =
    let c =
      {
        task_id = state.id;
        status;
        attempts = state.spawned;
        worker_pid = pid;
        elapsed_s = elapsed;
        crash_log = List.rev state.log;
        from_journal = false;
      }
    in
    completions.(state.index) <- Some c;
    Option.iter (fun j -> Journal.append j { Journal.task_id = c.task_id; data = completion_to_json c }) jnl;
    Option.iter (fun f -> f c) on_complete
  in
  let spawn state =
    state.spawned <- state.spawned + 1;
    incr executed;
    (* the child inherits stdio buffers; empty them so it cannot re-flush
       parent output (it uses _exit, but a worker that prints would
       interleave) *)
    flush stdout;
    flush stderr;
    let r, w = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
        Unix.close r;
        let _, payload = task_arr.(state.index) in
        run_child config worker payload w ~task_id:state.id ~attempt:state.spawned
    | pid ->
        Unix.close w;
        let now = Mono.now () in
        let deadline =
          match config.limits.Limits.wall_s with Some s -> now +. s | None -> infinity
        in
        running :=
          { pid; fd = r; buf = Buffer.create 1024; state; started = now; deadline; wall_killed = false }
          :: !running
  in
  let crash_attempt proc detail elapsed =
    let state = proc.state in
    state.log <- Printf.sprintf "attempt %d: %s" state.spawned detail :: state.log;
    if state.spawned >= config.max_attempts then finalize state (Crash elapsed) proc.pid elapsed
    else begin
      state.ready_at <-
        Mono.now () +. Backoff.delay config.backoff ~task:state.id ~attempt:state.spawned;
      delayed := state :: !delayed
    end
  in
  let classify proc wstatus elapsed =
    if proc.wall_killed then finalize proc.state (Timeout elapsed) proc.pid elapsed
    else
      match wstatus with
      | Unix.WEXITED 0 -> (
          match Ipc.parse_frame (Buffer.contents proc.buf) with
          | Error msg -> crash_attempt proc ("protocol: " ^ msg) elapsed
          | Ok frame -> (
              match Option.bind (Json.member "status" frame) Json.to_string with
              | Some "ok" -> (
                  (match Json.member "metrics" frame with
                  | Some m -> Obs.Metrics.absorb (samples_of_json m)
                  | None -> ());
                  match Json.member "value" frame with
                  | Some v -> finalize proc.state (Value v) proc.pid elapsed
                  | None -> crash_attempt proc "protocol: ok frame without value" elapsed)
              | Some "memout" -> finalize proc.state (Memout elapsed) proc.pid elapsed
              | Some "error" ->
                  let detail =
                    match Option.bind (Json.member "detail" frame) Json.to_string with
                    | Some d -> d
                    | None -> "unknown"
                  in
                  crash_attempt proc ("worker exception: " ^ detail) elapsed
              | Some other -> crash_attempt proc ("protocol: unknown status " ^ other) elapsed
              | None -> crash_attempt proc "protocol: frame without status" elapsed))
      | Unix.WEXITED code -> crash_attempt proc (Printf.sprintf "exit %d" code) elapsed
      | Unix.WSIGNALED s when s = Sys.sigxcpu ->
          (* the soft RLIMIT_CPU fired: a kernel-enforced timeout *)
          finalize proc.state (Timeout elapsed) proc.pid elapsed
      | Unix.WSIGNALED s -> crash_attempt proc (signal_name s) elapsed
      | Unix.WSTOPPED s -> crash_attempt proc ("stopped by " ^ signal_name s) elapsed
  in
  let reap proc =
    running := List.filter (fun p -> p.pid <> proc.pid) !running;
    Unix.close proc.fd;
    let rec wait () =
      match Unix.waitpid [] proc.pid with
      | _, wstatus -> wstatus
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
    in
    let wstatus = wait () in
    classify proc wstatus (Mono.now () -. proc.started)
  in
  let chunk = Bytes.create 65536 in
  let read_ready fds =
    List.iter
      (fun fd ->
        match List.find_opt (fun p -> p.fd = fd) !running with
        | None -> ()
        | Some proc -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> reap proc
            | len -> Buffer.add_subbytes proc.buf chunk 0 len
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
      fds
  in
  while (not (Queue.is_empty pending)) || !delayed <> [] || !running <> [] do
    let now = Mono.now () in
    (* promote delayed tasks whose backoff gate has passed *)
    let ready, still = List.partition (fun s -> s.ready_at <= now) !delayed in
    delayed := still;
    List.iter (fun s -> Queue.add s pending) ready;
    while List.length !running < config.jobs && not (Queue.is_empty pending) do
      spawn (Queue.pop pending)
    done;
    if !running = [] then begin
      (* only delayed tasks remain: sleep up to the earliest gate *)
      match !delayed with
      | [] -> ()
      | ds ->
          let earliest = List.fold_left (fun acc s -> Float.min acc s.ready_at) infinity ds in
          let pause = earliest -. Mono.now () in
          if pause > 0.0 then Unix.sleepf (Float.min pause 0.5)
    end
    else begin
      let next_deadline =
        List.fold_left (fun acc p -> Float.min acc p.deadline) infinity !running
      in
      let next_gate = List.fold_left (fun acc s -> Float.min acc s.ready_at) infinity !delayed in
      let timeout =
        let t = Float.min next_deadline next_gate -. now in
        if t = infinity then 0.5 else Float.max 0.0 (Float.min t 0.5)
      in
      (match Unix.select (List.map (fun p -> p.fd) !running) [] [] timeout with
      | readable, _, _ -> read_ready readable
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      let now = Mono.now () in
      List.iter
        (fun p ->
          if (not p.wall_killed) && now > p.deadline then begin
            p.wall_killed <- true;
            kill_group p.pid
          end)
        !running
    end
  done;
  Option.iter Journal.close jnl;
  let completions =
    Array.to_list completions
    |> List.map (function
         | Some c -> c
         | None ->
             (* unreachable: the loop only exits once every task finalized *)
             invalid_arg "Supervisor.run: task finished without a completion")
  in
  { completions; executed = !executed; journaled; journal_dropped = !journal_dropped }
