module Json = Obs.Json

(* the Budget clock is the one trace-legal timestamp source: monotonic
   and machine-wide, so supervisor and worker events merge in order *)
module Clock = Hqs_util.Budget

(* ----------------------------------------------------------------- types *)

type status = Value of Json.t | Timeout of float | Memout of float | Crash of float

type completion = {
  task_id : string;
  status : status;
  attempts : int;
  worker_pid : int;
  elapsed_s : float;
  crash_log : string list;
  from_journal : bool;
  salvaged_metrics : Obs.Metrics.sample list;
      (* the worker's last partial registry delta, recovered from the
         pipe when the attempt ended in a kill (timeout/memout) instead
         of a result frame; [] for clean completions and journal rows *)
}

type config = {
  jobs : int;
  limits : Limits.t;
  max_attempts : int;
  backoff : Backoff.policy;
  chaos : Hqs_util.Chaos.t;
}

let default_config =
  {
    jobs = 1;
    limits = Limits.none;
    max_attempts = 3;
    backoff = Backoff.default;
    chaos = Hqs_util.Chaos.off;
  }

type report = {
  completions : completion list;
  executed : int;
  journaled : int;
  journal_dropped : int;
}

(* -------------------------------------------------------- serialization *)

let status_label = function
  | Value _ -> "ok"
  | Timeout _ -> "timeout"
  | Memout _ -> "memout"
  | Crash _ -> "crash"

let samples_to_json samples =
  Json.Arr
    (List.map
       (fun (s : Obs.Metrics.sample) ->
         Json.Obj
           [
             ("n", Json.Str s.name);
             ("k", Json.Str (Obs.Metrics.kind_name s.kind));
             ("v", Json.Num s.v);
           ])
       samples)

let samples_of_json j =
  match Json.to_list j with
  | None -> []
  | Some l ->
      List.filter_map
        (fun item ->
          match
            ( Option.bind (Json.member "n" item) Json.to_string,
              Option.bind (Json.member "k" item) Json.to_string,
              Option.bind (Json.member "v" item) Json.to_number )
          with
          | Some name, Some kind, Some v ->
              Option.map
                (fun kind -> { Obs.Metrics.name; kind; v })
                (Obs.Metrics.kind_of_name kind)
          | _ -> None)
        l

let completion_to_json c =
  Json.Obj
    ([
       ("status", Json.Str (status_label c.status));
       ("elapsed_s", Json.Num c.elapsed_s);
       ("attempts", Json.Num (float_of_int c.attempts));
       ("pid", Json.Num (float_of_int c.worker_pid));
       ("value", (match c.status with Value v -> v | Timeout _ | Memout _ | Crash _ -> Json.Null));
       ("log", Json.Arr (List.map (fun s -> Json.Str s) c.crash_log));
     ]
    (* only when present, so journal lines for clean runs keep their
       exact historical shape *)
    @
    if c.salvaged_metrics = [] then []
    else [ ("salvaged", samples_to_json c.salvaged_metrics) ])

let completion_of_json ~task_id j =
  let num key = Option.bind (Json.member key j) Json.to_number in
  match (Option.bind (Json.member "status" j) Json.to_string, num "elapsed_s") with
  | Some label, Some elapsed_s -> (
      let status =
        match label with
        | "ok" -> Option.map (fun v -> Value v) (Json.member "value" j)
        | "timeout" -> Some (Timeout elapsed_s)
        | "memout" -> Some (Memout elapsed_s)
        | "crash" -> Some (Crash elapsed_s)
        | _ -> None
      in
      match status with
      | None -> None
      | Some status ->
          let log =
            match Option.bind (Json.member "log" j) Json.to_list with
            | None -> []
            | Some l -> List.filter_map Json.to_string l
          in
          Some
            {
              task_id;
              status;
              attempts = (match num "attempts" with Some a -> int_of_float a | None -> 1);
              worker_pid = (match num "pid" with Some p -> int_of_float p | None -> 0);
              elapsed_s;
              crash_log = log;
              from_journal = true;
              salvaged_metrics =
                (match Json.member "salvaged" j with Some s -> samples_of_json s | None -> []);
            })
  | _ -> None

(* ----------------------------------------------------------------- child *)

(* the minimum spacing between partial-state flushes: dense span traffic
   must not turn the result pipe into a firehose *)
let flush_interval_s = 0.05

let trace_fields () =
  if not (Obs.Trace.enabled ()) then []
  else
    [
      ("events", Obs.Trace.events_to_json (Obs.Trace.events ()));
      ("dropped", Json.Num (float_of_int (Obs.Trace.dropped ())));
    ]

let run_child config worker payload fd ~task_id ~attempt ~trace_id ~parent_span =
  (* own session => own process group, so the supervisor's wall-clock
     SIGKILL takes out any grandchildren too *)
  (try ignore (Unix.setsid ()) with Unix.Unix_error (_, _, _) -> ());
  Limits.apply_in_child config.limits;
  (* drop the parent's buffered events/open spans (they belong to the
     supervisor's row of the merged trace, not this worker's), clear any
     inherited flush hook and reset the fallback clock mark *)
  Obs.fork_reinit ();
  if Hqs_util.Chaos.fire config.chaos (Hqs_util.Chaos.worker_kill_point ~task:task_id ~attempt)
  then Unix.kill (Unix.getpid ()) Sys.sigkill;
  let before = Obs.Metrics.snapshot () in
  (* a SIGKILL (wall/chaos) gives no chance to reply, so every span exit
     flushes a throttled partial frame: latest metric delta plus the span
     buffer so far. The parent keeps only the newest one, and only uses
     it when no final frame arrives. *)
  let last_flush = ref (Clock.now ()) in
  Obs.Span.set_flush_hook
    (Some
       (fun () ->
         let now = Clock.now () in
         if now -. !last_flush >= flush_interval_s then begin
           last_flush := now;
           let delta = Obs.Metrics.delta ~before ~after:(Obs.Metrics.snapshot ()) in
           Ipc.write_frame fd
             (Json.Obj
                ((("status", Json.Str "partial") :: ("metrics", samples_to_json delta) :: [])
                @ trace_fields ()))
         end));
  (* the worker's root span carries the cross-process parent link: the
     supervisor's per-task span id and the run's trace id *)
  let root_attrs =
    [ ("trace_id", Obs.Str trace_id); ("parent_span", Obs.Str parent_span) ]
  in
  let run () = Obs.Span.with_ "sup.child" ~attrs:root_attrs (fun () -> worker payload) in
  let result = match run () with v -> Ok v | exception e -> Error e in
  Obs.Span.set_flush_hook None;
  let delta = Obs.Metrics.delta ~before ~after:(Obs.Metrics.snapshot ()) in
  let with_obs fields = Json.Obj (fields @ [ ("metrics", samples_to_json delta) ] @ trace_fields ()) in
  let frame =
    match result with
    | Ok v -> with_obs [ ("status", Json.Str "ok"); ("value", v) ]
    | Error Stdlib.Out_of_memory ->
        (* the rlimit (or heap governor) said no: a clean memout *)
        with_obs [ ("status", Json.Str "memout") ]
    | Error Stack_overflow ->
        with_obs [ ("status", Json.Str "error"); ("detail", Json.Str "Stack_overflow") ]
    (* arbitrary worker failures were converted into [Error e] above;
       nothing is swallowed, the supervisor re-raises the failure as a
       crash classification *)
    | Error e ->
        with_obs [ ("status", Json.Str "error"); ("detail", Json.Str (Printexc.to_string e)) ]
  in
  (match Ipc.write_frame fd frame with
  | () -> ()
  | exception Unix.Unix_error (_, _, _) -> ());
  (* _exit, not exit: at_exit handlers (inherited channel flushes) must
     not run in the forked copy *)
  Unix._exit 0

(* ---------------------------------------------------------------- parent *)

let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigxcpu then "SIGXCPU"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else Printf.sprintf "signal(%d)" s

let kill_group pid =
  match Unix.kill (-pid) Sys.sigkill with
  | () -> ()
  | exception Unix.Unix_error (_, _, _) -> (
      match Unix.kill pid Sys.sigkill with
      | () -> ()
      | exception Unix.Unix_error (_, _, _) -> ())

type task_state = {
  index : int;
  id : string;
  mutable spawned : int;  (* attempts consumed so far *)
  mutable log : string list;  (* failed-attempt descriptions, newest first *)
  mutable ready_at : float;  (* backoff gate for the next spawn *)
}

type worker_proc = {
  pid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  state : task_state;
  span_id : string; (* the supervisor-side span this attempt parents to *)
  started : float;
  deadline : float;
  mutable wall_killed : bool;
}

(* workers may send any number of throttled "partial" frames before the
   final result frame (or before dying). Split the pipe contents into
   (last partial if any, final frame if any); trailing torn bytes from a
   mid-write kill are ignored. *)
let split_frames buf =
  let r = Ipc.reader () in
  let bytes = Buffer.to_bytes buf in
  Ipc.feed r bytes (Bytes.length bytes);
  let rec go partial final =
    match Ipc.next_frame r with
    | None | Some (Error _) -> (partial, final)
    | Some (Ok frame) -> (
        match Option.bind (Json.member "status" frame) Json.to_string with
        | Some "partial" -> go (Some frame) final
        | _ -> go partial (Some frame))
  in
  go None None

let frame_samples frame =
  match Json.member "metrics" frame with Some m -> samples_of_json m | None -> []

(* fold a worker frame's span buffer into the parent trace, under the
   worker's pid row; [truncated] marks batches recovered from a killed
   attempt so synthesized span ends are flagged in the output *)
let inject_frame_events ~pid ~truncated frame =
  if Obs.Trace.enabled () then
    match Json.member "events" frame with
    | None -> ()
    | Some ev_json ->
        let dropped =
          match Option.bind (Json.member "dropped" frame) Json.to_number with
          | Some d -> int_of_float d
          | None -> 0
        in
        Obs.Trace.inject ~pid ~dropped ~truncated (Obs.Trace.events_of_json ev_json)

let run ?(config = default_config) ?journal ?resume ?on_complete ~worker tasks =
  Ipc.ignore_sigpipe ();
  if config.jobs < 1 then invalid_arg "Supervisor.run: jobs must be >= 1";
  if config.max_attempts < 1 then invalid_arg "Supervisor.run: max_attempts must be >= 1";
  let ids = Hashtbl.create 16 in
  List.iter
    (fun (id, _) ->
      if Hashtbl.mem ids id then invalid_arg ("Supervisor.run: duplicate task id " ^ id);
      Hashtbl.replace ids id ())
    tasks;
  (* resume: every checksum-valid journal line for a known task id is a
     finished task this run must not repeat *)
  let journal_dropped = ref 0 in
  let resumed : (string, completion) Hashtbl.t = Hashtbl.create 16 in
  (match resume with
  | None -> ()
  | Some path ->
      let { Journal.entries; dropped } = Journal.load path in
      journal_dropped := dropped;
      List.iter
        (fun { Journal.task_id; data } ->
          if Hashtbl.mem ids task_id then
            match completion_of_json ~task_id data with
            | Some c -> Hashtbl.replace resumed task_id c
            | None -> incr journal_dropped)
        entries);
  let jnl = Option.map Journal.open_append journal in
  let task_arr = Array.of_list tasks in
  let n = Array.length task_arr in
  let completions : completion option array = Array.make n None in
  let pending = Queue.create () in
  (* tasks whose backoff gate is in the future, kept out of the hot queue *)
  let delayed : task_state list ref = ref [] in
  let running : worker_proc list ref = ref [] in
  let executed = ref 0 in
  Array.iteri
    (fun index (id, _) ->
      match Hashtbl.find_opt resumed id with
      | Some c ->
          completions.(index) <- Some c;
          Option.iter (fun f -> f c) on_complete
      | None -> Queue.add { index; id; spawned = 0; log = []; ready_at = 0.0 } pending)
    task_arr;
  let journaled = n - Queue.length pending in
  (* one trace context per run: worker root spans link back to the
     supervisor's per-task spans through (trace_id, span_id) pairs *)
  let trace_id =
    Printf.sprintf "sweep-%d-%x" (Unix.getpid ())
      (int_of_float (Float.rem (Clock.now () *. 1e3) 16777216.0))
  in
  let span_id_of state = Printf.sprintf "%s#%d" state.id (state.spawned + 1) in
  (* each task gets its own Chrome thread row: [Span.with_]'s strict
     nesting cannot express [jobs] overlapping attempts on one row *)
  let task_tid state = 1000 + state.index in
  let finalize ?(salvaged = []) state status pid elapsed =
    let c =
      {
        task_id = state.id;
        status;
        attempts = state.spawned;
        worker_pid = pid;
        elapsed_s = elapsed;
        crash_log = List.rev state.log;
        from_journal = false;
        salvaged_metrics = salvaged;
      }
    in
    completions.(state.index) <- Some c;
    Option.iter (fun j -> Journal.append j { Journal.task_id = c.task_id; data = completion_to_json c }) jnl;
    Option.iter (fun f -> f c) on_complete
  in
  let spawn state =
    let span_id = span_id_of state in
    state.spawned <- state.spawned + 1;
    incr executed;
    Obs.Trace.emit ~tid:(task_tid state)
      ~attrs:
        [
          ("task", Obs.Str state.id);
          ("attempt", Obs.Int state.spawned);
          ("trace_id", Obs.Str trace_id);
          ("span_id", Obs.Str span_id);
        ]
      "sup.task" Obs.Trace.Begin;
    (* the child inherits stdio buffers; empty them so it cannot re-flush
       parent output (it uses _exit, but a worker that prints would
       interleave) *)
    flush stdout;
    flush stderr;
    let r, w = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
        Unix.close r;
        let _, payload = task_arr.(state.index) in
        run_child config worker payload w ~task_id:state.id ~attempt:state.spawned ~trace_id
          ~parent_span:span_id
    | pid ->
        Unix.close w;
        let now = Clock.now () in
        let deadline =
          match config.limits.Limits.wall_s with Some s -> now +. s | None -> infinity
        in
        running :=
          {
            pid;
            fd = r;
            buf = Buffer.create 1024;
            state;
            span_id;
            started = now;
            deadline;
            wall_killed = false;
          }
          :: !running
  in
  let crash_attempt proc detail elapsed =
    let state = proc.state in
    state.log <- Printf.sprintf "attempt %d: %s" state.spawned detail :: state.log;
    if state.spawned >= config.max_attempts then finalize state (Crash elapsed) proc.pid elapsed
    else begin
      state.ready_at <-
        Clock.now () +. Backoff.delay config.backoff ~task:state.id ~attempt:state.spawned;
      delayed := state :: !delayed
    end
  in
  (* a killed attempt left no result frame, but usually a recent partial
     one: salvage its metric delta (absorbed into this registry and kept
     on the completion for TO/MO reporting) and its span buffer *)
  let salvage_partial proc frame_opt =
    match frame_opt with
    | None -> []
    | Some frame ->
        let samples = frame_samples frame in
        Obs.Metrics.absorb samples;
        inject_frame_events ~pid:proc.pid ~truncated:true frame;
        samples
  in
  let classify proc wstatus elapsed =
    let partial, final = split_frames proc.buf in
    if proc.wall_killed then
      let salvaged = salvage_partial proc partial in
      finalize ~salvaged proc.state (Timeout elapsed) proc.pid elapsed
    else
      match wstatus with
      | Unix.WEXITED 0 -> (
          match final with
          | None ->
              let msg =
                match Ipc.parse_frame (Buffer.contents proc.buf) with
                | Error msg -> msg
                | Ok _ -> "missing final frame"
              in
              crash_attempt proc ("protocol: " ^ msg) elapsed
          | Some frame -> (
              match Option.bind (Json.member "status" frame) Json.to_string with
              | Some "ok" -> (
                  Obs.Metrics.absorb (frame_samples frame);
                  inject_frame_events ~pid:proc.pid ~truncated:false frame;
                  match Json.member "value" frame with
                  | Some v -> finalize proc.state (Value v) proc.pid elapsed
                  | None -> crash_attempt proc "protocol: ok frame without value" elapsed)
              | Some "memout" ->
                  let samples = frame_samples frame in
                  Obs.Metrics.absorb samples;
                  inject_frame_events ~pid:proc.pid ~truncated:false frame;
                  finalize ~salvaged:samples proc.state (Memout elapsed) proc.pid elapsed
              | Some "error" ->
                  let detail =
                    match Option.bind (Json.member "detail" frame) Json.to_string with
                    | Some d -> d
                    | None -> "unknown"
                  in
                  crash_attempt proc ("worker exception: " ^ detail) elapsed
              | Some other -> crash_attempt proc ("protocol: unknown status " ^ other) elapsed
              | None -> crash_attempt proc "protocol: frame without status" elapsed))
      | Unix.WEXITED code -> crash_attempt proc (Printf.sprintf "exit %d" code) elapsed
      | Unix.WSIGNALED s when s = Sys.sigxcpu ->
          (* the soft RLIMIT_CPU fired: a kernel-enforced timeout *)
          let salvaged = salvage_partial proc partial in
          finalize ~salvaged proc.state (Timeout elapsed) proc.pid elapsed
      | Unix.WSIGNALED s ->
          (* a crash may be retried: keep the trace row, skip the metric
             absorb so retries cannot double-count *)
          inject_frame_events ~pid:proc.pid ~truncated:true
            (Option.value ~default:(Json.Obj []) partial);
          crash_attempt proc (signal_name s) elapsed
      | Unix.WSTOPPED s -> crash_attempt proc ("stopped by " ^ signal_name s) elapsed
  in
  let reap proc =
    running := List.filter (fun p -> p.pid <> proc.pid) !running;
    Unix.close proc.fd;
    let rec wait () =
      match Unix.waitpid [] proc.pid with
      | _, wstatus -> wstatus
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
    in
    let wstatus = wait () in
    let elapsed = Clock.now () -. proc.started in
    classify proc wstatus elapsed;
    Obs.Trace.emit ~tid:(task_tid proc.state)
      ~attrs:
        [
          ("task", Obs.Str proc.state.id);
          ("span_id", Obs.Str proc.span_id);
          ("worker_pid", Obs.Int proc.pid);
          ("elapsed_s", Obs.Float elapsed);
        ]
      "sup.task" Obs.Trace.End
  in
  let chunk = Bytes.create 65536 in
  let read_ready fds =
    List.iter
      (fun fd ->
        match List.find_opt (fun p -> p.fd = fd) !running with
        | None -> ()
        | Some proc -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> reap proc
            | len -> Buffer.add_subbytes proc.buf chunk 0 len
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
      fds
  in
  while (not (Queue.is_empty pending)) || !delayed <> [] || !running <> [] do
    let now = Clock.now () in
    (* promote delayed tasks whose backoff gate has passed *)
    let ready, still = List.partition (fun s -> s.ready_at <= now) !delayed in
    delayed := still;
    List.iter (fun s -> Queue.add s pending) ready;
    while List.length !running < config.jobs && not (Queue.is_empty pending) do
      spawn (Queue.pop pending)
    done;
    if !running = [] then begin
      (* only delayed tasks remain: sleep up to the earliest gate *)
      match !delayed with
      | [] -> ()
      | ds ->
          let earliest = List.fold_left (fun acc s -> Float.min acc s.ready_at) infinity ds in
          let pause = earliest -. Clock.now () in
          if pause > 0.0 then Unix.sleepf (Float.min pause 0.5)
    end
    else begin
      let next_deadline =
        List.fold_left (fun acc p -> Float.min acc p.deadline) infinity !running
      in
      let next_gate = List.fold_left (fun acc s -> Float.min acc s.ready_at) infinity !delayed in
      let timeout =
        let t = Float.min next_deadline next_gate -. now in
        if t = infinity then 0.5 else Float.max 0.0 (Float.min t 0.5)
      in
      (match Unix.select (List.map (fun p -> p.fd) !running) [] [] timeout with
      | readable, _, _ -> read_ready readable
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      let now = Clock.now () in
      List.iter
        (fun p ->
          if (not p.wall_killed) && now > p.deadline then begin
            p.wall_killed <- true;
            kill_group p.pid
          end)
        !running
    end
  done;
  Option.iter Journal.close jnl;
  let completions =
    Array.to_list completions
    |> List.map (function
         | Some c -> c
         | None ->
             (* unreachable: the loop only exits once every task finalized *)
             invalid_arg "Supervisor.run: task finished without a completion")
  in
  { completions; executed = !executed; journaled; journal_dropped = !journal_dropped }
