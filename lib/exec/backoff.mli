(** Bounded exponential backoff with deterministic jitter for crash
    retries.

    The schedule is a pure function of [(policy, task, attempt)] — no
    global RNG, no wall clock — so a retried sweep reproduces the exact
    same delays (and the unit tests can assert them). *)

type policy = {
  base_s : float;  (** delay before the first retry *)
  factor : float;  (** exponential growth per attempt *)
  max_s : float;  (** cap on the un-jittered delay *)
  jitter : float;  (** relative jitter amplitude in [0,1): ±jitter·delay *)
  seed : int;  (** jitter stream seed *)
}

val default : policy
(** 50 ms base, ×2 per attempt, capped at 2 s, ±25 % jitter. *)

val delay : policy -> task:string -> attempt:int -> float
(** Seconds to wait before re-spawning [task] after its [attempt]-th
    failure (1-based). Always non-negative.
    @raise Invalid_argument if [attempt < 1]. *)
