(** Crash-safe JSONL journal of completed sweep tasks — the persistence
    behind [--resume].

    One line per completed task:
    [{"c":"<fnv64-hex>","e":{"id":"<task>","data":<payload>}}] where
    ["c"] is an FNV-1a checksum of the canonical {!Obs.Json.render}ing of
    ["e"]. {!append} builds the whole line in memory, hands it to the
    kernel as a single [O_APPEND] write and fsyncs, so a supervisor
    killed mid-append leaves at most one torn trailing line; {!load}
    verifies every line's checksum and silently skips (but counts) the
    torn ones, so a resumed sweep re-runs exactly the tasks with no valid
    journal line. *)

type entry = { task_id : string; data : Obs.Json.t }

val encode_line : entry -> string
(** One journal line, without the trailing newline. *)

val decode_line : string -> (entry, string) result
(** Parse and checksum-verify one line. *)

val checksum : string -> string
(** The FNV-1a line checksum (hex), exposed for tests. *)

type t

val open_append : string -> t
(** Open (creating if missing) for appending. *)

val append : t -> entry -> unit
(** Single-write append + [fsync]. *)

val close : t -> unit
val path : t -> string

type load = { entries : entry list; dropped : int }

val load : string -> load
(** All checksum-valid entries in file order; [dropped] counts torn or
    corrupt lines that were skipped. A missing file is an empty load. *)
