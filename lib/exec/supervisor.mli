(** Process-isolated supervised task executor.

    Each task runs in a forked child in its own session/process group,
    under kernel resource limits ({!Limits}); results travel back to the
    parent over a pipe as length-prefixed JSON frames ({!Ipc}): any
    number of throttled ["partial"] state flushes (latest metric delta
    plus span buffer, written at span exits) followed by one final result
    frame. The parent uses the newest partial only when the final frame
    never arrives (the attempt was killed), salvaging the metrics and
    trace of a timed-out worker.

    When tracing is enabled in the parent, the run is stitched into one
    multi-process trace: the supervisor emits a [sup.task] span per
    attempt on a per-task thread row carrying [trace_id]/[span_id] args,
    each worker opens a [sup.child] root span carrying the matching
    [parent_span] link, and worker span buffers are merged under their
    own pid rows via {!Obs.Trace.inject} (mid-span deaths are repaired
    and flagged [truncated]).
    The parent multiplexes up to [jobs] workers with [select], classifies
    every child death, retries transient crashes on a deterministic
    backoff schedule ({!Backoff}), quarantines a task as {!Crash} after
    [max_attempts], and optionally journals every completion to a
    crash-safe JSONL file ({!Journal}) so an interrupted sweep can be
    [?resume]d without re-running finished tasks.

    Crash taxonomy (how a child death maps to a {!status}):
    - clean exit 0 + ["ok"] frame — {!Value} (child metric deltas are
      {!Obs.Metrics.absorb}ed into the parent registry)
    - clean exit 0 + ["memout"] frame — {!Memout} (the child's allocator
      hit [RLIMIT_AS] or the in-process governor and raised
      [Out_of_memory])
    - parent wall-deadline SIGKILL of the process group — {!Timeout}
    - death by [SIGXCPU] (soft [RLIMIT_CPU]) — {!Timeout}
    - anything else — nonzero exit, other fatal signal, ["error"] frame
      (worker exception, incl. [Stack_overflow]), or a torn/invalid frame
      — is a crash {e attempt}: retried after backoff, {!Crash} once
      [max_attempts] are exhausted. *)

type status =
  | Value of Obs.Json.t  (** worker returned this payload *)
  | Timeout of float  (** wall or CPU limit hit after [s] seconds *)
  | Memout of float  (** memory limit hit after [s] seconds *)
  | Crash of float  (** quarantined after exhausting retries *)

type completion = {
  task_id : string;
  status : status;
  attempts : int;  (** worker processes spawned for this task *)
  worker_pid : int;  (** pid of the final attempt (0 if journaled pre-fork) *)
  elapsed_s : float;  (** wall time of the final attempt *)
  crash_log : string list;  (** one line per failed attempt, oldest first *)
  from_journal : bool;  (** true: replayed from [?resume], not executed *)
  salvaged_metrics : Obs.Metrics.sample list;
      (** on {!Timeout}/{!Memout}: the worker's last registry delta,
          recovered from its final result frame or from the newest
          throttled partial frame it flushed before being killed —
          exactly the data that explains where the budget went. [[]] for
          clean completions. *)
}

type config = {
  jobs : int;  (** concurrent workers, >= 1 *)
  limits : Limits.t;  (** per-child kernel limits *)
  max_attempts : int;  (** spawns before quarantine, >= 1 *)
  backoff : Backoff.policy;  (** retry delay schedule *)
  chaos : Hqs_util.Chaos.t;  (** fault plan forwarded into children *)
}

val default_config : config
(** 1 job, no limits, 3 attempts, {!Backoff.default}, chaos off. *)

type report = {
  completions : completion list;  (** one per task, in input order *)
  executed : int;  (** worker processes actually spawned *)
  journaled : int;  (** tasks satisfied from the resume journal *)
  journal_dropped : int;  (** torn/corrupt resume lines skipped *)
}

val run :
  ?config:config ->
  ?journal:string ->
  ?resume:string ->
  ?on_complete:(completion -> unit) ->
  worker:('a -> Obs.Json.t) ->
  (string * 'a) list ->
  report
(** [run ~worker tasks] executes every [(id, payload)] task in a forked
    child and returns all completions in input order.

    [?journal] appends each completion to a crash-safe JSONL file as it
    finishes. [?resume] pre-loads completions from such a file: tasks
    with a checksum-valid line are reported [from_journal] and never
    forked (they still reach [?on_complete]). The same path may be given
    for both, so repeated [--resume J --journal J] sweeps converge.
    [?on_complete] observes completions as they land, in completion
    order, for progress output.

    The worker callback runs in the {e child} process; it must return its
    result as JSON (or raise — [Out_of_memory] becomes {!Memout},
    anything else a crash attempt). The parent never runs worker code.

    @raise Invalid_argument on duplicate task ids or a nonsensical
    config. *)

val signal_name : int -> string
(** Human name for an OCaml [Sys] signal number (["SIGKILL"], ...). *)

val completion_to_json : completion -> Obs.Json.t
(** The journal payload for a completion, exposed for tests. *)

val completion_of_json : task_id:string -> Obs.Json.t -> completion option
(** Decode a journal payload; [None] if malformed. The result has
    [from_journal = true]. *)
