module Json = Obs.Json

let header_len = 11 (* ten decimal digits + '\n' *)

let write_all fd bytes =
  let n = Bytes.length bytes in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd bytes !off (n - !off)
  done

let write_frame fd json =
  let payload = Json.render json in
  let frame = Printf.sprintf "%010d\n%s" (String.length payload) payload in
  write_all fd (Bytes.of_string frame)

let parse_frame buf =
  let n = String.length buf in
  if n < header_len then Error (Printf.sprintf "short frame: %d bytes" n)
  else if buf.[header_len - 1] <> '\n' then Error "malformed frame header"
  else
    match int_of_string_opt (String.sub buf 0 (header_len - 1)) with
    | None -> Error "malformed frame length"
    | Some len when len < 0 -> Error "negative frame length"
    | Some len ->
        if n - header_len < len then
          Error (Printf.sprintf "truncated frame: %d of %d payload bytes" (n - header_len) len)
        else if n - header_len > len then
          Error (Printf.sprintf "oversized frame: %d extra bytes" (n - header_len - len))
        else (
          match Json.parse (String.sub buf header_len len) with
          | Ok v -> Ok v
          | Error msg -> Error ("bad frame JSON: " ^ msg))
