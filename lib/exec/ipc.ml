module Json = Obs.Json

let header_len = 11 (* ten decimal digits + '\n' *)

(* ------------------------------------------------------- signal hygiene *)

let ignore_sigpipe () =
  (* a peer that closes its end mid-write must surface as EPIPE from
     [write], not as a process-killing signal *)
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* --------------------------------------------------- EINTR-safe syscalls *)

let rec retry_read fd buf off len =
  match Unix.read fd buf off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_read fd buf off len

let rec retry_write fd buf off len =
  match Unix.write fd buf off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_write fd buf off len

let write_all fd bytes =
  let n = Bytes.length bytes in
  let off = ref 0 in
  while !off < n do
    off := !off + retry_write fd bytes !off (n - !off)
  done

(* --------------------------------------------------------------- frames *)

let frame_string json =
  let payload = Json.render json in
  Printf.sprintf "%010d\n%s" (String.length payload) payload

let write_frame fd json = write_all fd (Bytes.of_string (frame_string json))

let parse_frame buf =
  let n = String.length buf in
  if n < header_len then Error (Printf.sprintf "short frame: %d bytes" n)
  else if buf.[header_len - 1] <> '\n' then Error "malformed frame header"
  else
    match int_of_string_opt (String.sub buf 0 (header_len - 1)) with
    | None -> Error "malformed frame length"
    | Some len when len < 0 -> Error "negative frame length"
    | Some len ->
        if n - header_len < len then
          Error (Printf.sprintf "truncated frame: %d of %d payload bytes" (n - header_len) len)
        else if n - header_len > len then
          Error (Printf.sprintf "oversized frame: %d extra bytes" (n - header_len - len))
        else (
          match Json.parse (String.sub buf header_len len) with
          | Ok v -> Ok v
          | Error msg -> Error ("bad frame JSON: " ^ msg))

(* --------------------------------------------------- incremental reading *)

(* Byte stream with possibly many frames in flight (the serve daemon's
   persistent connections), decoded incrementally: bytes accumulate in
   [buf] and [next_frame] peels complete frames off the front. *)
type reader = { buf : Buffer.t; mutable pos : int }

let reader () = { buf = Buffer.create 256; pos = 0 }

let feed r bytes len = Buffer.add_subbytes r.buf bytes 0 len

(* shift consumed bytes out once they dominate the buffer, so a
   long-lived connection doesn't grow without bound *)
let compact r =
  if r.pos > 4096 && r.pos * 2 > Buffer.length r.buf then begin
    let rest = Buffer.sub r.buf r.pos (Buffer.length r.buf - r.pos) in
    Buffer.clear r.buf;
    Buffer.add_string r.buf rest;
    r.pos <- 0
  end

let next_frame r =
  let avail = Buffer.length r.buf - r.pos in
  if avail < header_len then None
  else begin
    let header = Buffer.sub r.buf r.pos header_len in
    if header.[header_len - 1] <> '\n' then Some (Error "malformed frame header")
    else
      match int_of_string_opt (String.sub header 0 (header_len - 1)) with
      | None -> Some (Error "malformed frame length")
      | Some len when len < 0 -> Some (Error "negative frame length")
      | Some len ->
          if avail - header_len < len then None
          else begin
            let payload = Buffer.sub r.buf (r.pos + header_len) len in
            r.pos <- r.pos + header_len + len;
            compact r;
            match Json.parse payload with
            | Ok v -> Some (Ok v)
            | Error msg -> Some (Error ("bad frame JSON: " ^ msg))
          end
  end

type read_result = Frame of Json.t | Eof | Malformed of string

let read_next r fd =
  let chunk = Bytes.create 8192 in
  let rec go () =
    match next_frame r with
    | Some (Ok v) -> Frame v
    | Some (Error msg) -> Malformed msg
    | None -> (
        match retry_read fd chunk 0 (Bytes.length chunk) with
        | 0 ->
            if Buffer.length r.buf - r.pos = 0 then Eof
            else Malformed "EOF inside frame"
        | n ->
            feed r chunk n;
            go ())
  in
  go ()

let read_frame fd = read_next (reader ()) fd
