external setrlimit : int -> int -> int -> bool = "hqs_exec_setrlimit"

type t = { wall_s : float option; cpu_s : int option; mem_bytes : int option }

let none = { wall_s = None; cpu_s = None; mem_bytes = None }

(* RLIMIT_CPU: the soft limit delivers SIGXCPU (classified as a CPU
   timeout by the supervisor); the hard limit, two seconds later, is the
   kernel's SIGKILL backstop should the worker ignore it. *)
let apply_in_child t =
  (match t.cpu_s with
  | None -> ()
  | Some s ->
      let s = max 1 s in
      ignore (setrlimit 0 s (s + 2)));
  match t.mem_bytes with
  | None -> ()
  | Some b ->
      let b = max (16 * 1024 * 1024) b in
      ignore (setrlimit 1 b b)
