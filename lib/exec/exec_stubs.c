/* OS resource limits for forked sweep workers. The OCaml Unix library
   does not bind setrlimit, so the executor carries its own stub: the
   paper's per-instance CPU/memory abort criteria (Section IV) are
   enforced by the kernel, not by cooperative polling, which is what
   makes a worker segfault or runaway loop survivable for the sweep. */
#include <caml/mlvalues.h>
#include <sys/resource.h>
#include <sys/time.h>

/* which: 0 = RLIMIT_CPU (seconds), 1 = RLIMIT_AS (bytes) */
CAMLprim value hqs_exec_setrlimit(value v_which, value v_soft, value v_hard)
{
  struct rlimit rl;
  int resource = Int_val(v_which) == 0 ? RLIMIT_CPU : RLIMIT_AS;
  rl.rlim_cur = (rlim_t)Long_val(v_soft);
  rl.rlim_max = (rlim_t)Long_val(v_hard);
  return Val_bool(setrlimit(resource, &rl) == 0);
}
