(** Per-worker OS resource limits, mirroring the paper's per-instance
    abort criteria (Section IV: wall-clock timeout and memory cap).

    [wall_s] is enforced by the {e supervisor} (it SIGKILLs the worker's
    process group past the deadline); [cpu_s] and [mem_bytes] are applied
    {e inside the child} between [fork] and the task body, via
    [setrlimit] (bound by a local C stub — the OCaml [Unix] library does
    not expose it):
    - [cpu_s] sets [RLIMIT_CPU] with soft = [cpu_s] (SIGXCPU, classified
      as a CPU timeout) and hard = [cpu_s + 2] (kernel SIGKILL backstop);
    - [mem_bytes] sets [RLIMIT_AS] (soft = hard), floored at 16 MiB so
      the OCaml runtime itself can still start; an allocation beyond it
      fails, surfaces as [Out_of_memory] in the worker, and is reported
      as a memout over the result pipe. *)

type t = { wall_s : float option; cpu_s : int option; mem_bytes : int option }

val none : t

val apply_in_child : t -> unit
(** Apply [cpu_s]/[mem_bytes] to the calling process. Call only in a
    freshly forked worker. Failures are ignored (the limit is then simply
    not enforced; the supervisor's wall-clock kill still applies). *)
