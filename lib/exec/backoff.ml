type policy = { base_s : float; factor : float; max_s : float; jitter : float; seed : int }

let default = { base_s = 0.05; factor = 2.0; max_s = 2.0; jitter = 0.25; seed = 0 }

(* FNV-1a, as in Chaos: the task name only picks the jitter stream *)
let hash_name s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land max_int) s;
  !h

let delay policy ~task ~attempt =
  if attempt < 1 then invalid_arg "Backoff.delay: attempt is 1-based";
  let raw = policy.base_s *. (policy.factor ** float_of_int (attempt - 1)) in
  let capped = Float.min policy.max_s raw in
  let jitter =
    if policy.jitter = 0.0 then 0.0
    else begin
      (* a fresh stream per (seed, task, attempt): deterministic, and
         re-runs of the same schedule reproduce it exactly *)
      let rng = Hqs_util.Rng.create (policy.seed lxor hash_name task lxor (attempt * 0x9e3779b9)) in
      policy.jitter *. (Hqs_util.Rng.float rng 2.0 -. 1.0)
    end
  in
  Float.max 0.0 (capped *. (1.0 +. jitter))
