(* benchdiff: compare two benchmark baseline files and fail on
   regressions. Understands both committed baseline shapes:

   - BENCH_obs.json       ({"instances": [...]} with per-instance time_s,
                           per-phase span totals and the metric delta)
   - BENCH_trajectory.json ({"families": {...}} with per-family series of
                           wall/phase/metric points; the newest point of
                           each series is compared)

   Both flatten to key -> float: <id>/time_s, <id>/phase.<span>.total_s,
   <id>/metric.<name> (obs) or <family>/<series> (trajectory). A key
   regresses when the candidate value exceeds the baseline by more than
   a per-class tolerance: time-like keys (ending in _s) get a relative
   tolerance wide enough for wall-clock noise but tight enough to catch
   a 20% phase-time regression; everything else (counters, node/clause
   sizes) is expected to be near-deterministic and gets a tighter bound.
   Keys that shrink are improvements and never fail. --inflate REGEX=F
   multiplies matching candidate keys — the CI gate uses it to prove the
   gate trips on a seeded regression.

   Exit 0 when no key regresses, 1 on any regression (each is printed),
   2 on usage or parse errors. *)

open Cmdliner

module Json = Obs.Json

let die fmt = Printf.ksprintf (fun msg -> Printf.eprintf "benchdiff: %s\n" msg; exit 2) fmt

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> s
  | exception Sys_error msg -> die "%s" msg

(* keys that are pure machine-speed microbenchmarks, meaningless across
   hosts — never compared *)
let ignored_key k = k = "disabled_span_ns_per_call"

let flatten_obs instances =
  List.concat_map
    (fun inst ->
      let id =
        match Json.member "id" inst with
        | Some (Json.Str s) -> s
        | _ -> die "instance without a string id"
      in
      let time =
        match Option.bind (Json.member "time_s" inst) Json.to_number with
        | Some t -> [ (id ^ "/time_s", t) ]
        | None -> []
      in
      let phases =
        match Json.member "phases" inst with
        | Some (Json.Obj fields) ->
            List.filter_map
              (fun (span, v) ->
                Option.map
                  (fun t -> (Printf.sprintf "%s/phase.%s.total_s" id span, t))
                  (Option.bind (Json.member "total_s" v) Json.to_number))
              fields
        | _ -> []
      in
      let metrics =
        match Json.member "metrics" inst with
        | Some (Json.Obj fields) ->
            List.filter_map
              (fun (name, v) ->
                Option.map
                  (fun x -> (Printf.sprintf "%s/metric.%s" id name, x))
                  (Json.to_number v))
              fields
        | _ -> []
      in
      time @ phases @ metrics)
    instances

let flatten_trajectory families =
  List.concat_map
    (fun (family, series) ->
      match series with
      | Json.Obj fields ->
          List.filter_map
            (fun (key, v) ->
              match v with
              | Json.Arr points when points <> [] ->
                  (* the newest point of the series is the current state *)
                  Option.map
                    (fun x -> (family ^ "/" ^ key, x))
                    (Json.to_number (List.nth points (List.length points - 1)))
              | _ -> None)
            fields
      | _ -> [])
    families

let load path =
  let json =
    match Json.parse (read_file path) with
    | Ok j -> j
    | Error msg -> die "%s: invalid JSON: %s" path msg
  in
  let flat =
    match (Json.member "families" json, Json.member "instances" json) with
    | Some (Json.Obj fams), _ -> flatten_trajectory fams
    | _, Some arr -> (
        match Json.to_list arr with
        | Some instances -> flatten_obs instances
        | None -> die "%s: instances is not an array" path)
    | _ -> die "%s: neither a trajectory (families) nor an obs baseline (instances)" path
  in
  List.filter (fun (k, _) -> not (ignored_key k)) flat

(* a key is time-like when its leaf measures seconds — these get the
   wall-clock-noise tolerance; everything else is a near-deterministic
   count *)
let time_like key =
  let n = String.length key in
  n >= 2 && String.sub key (n - 2) 2 = "_s"

let parse_inflate spec =
  match String.index_opt spec '=' with
  | None -> die "--inflate %s: expected REGEX=FACTOR" spec
  | Some i -> (
      let re = String.sub spec 0 i in
      let f = String.sub spec (i + 1) (String.length spec - i - 1) in
      match float_of_string_opt f with
      | None -> die "--inflate %s: %s is not a number" spec f
      | Some factor -> (
          match Str.regexp re with
          | re -> (re, factor)
          | exception Failure msg -> die "--inflate %s: bad regex: %s" spec msg))

let apply_inflations inflations kvs =
  List.map
    (fun (k, v) ->
      let v =
        List.fold_left
          (fun v (re, factor) ->
            if Str.string_match re k 0 && Str.match_end () = String.length k then v *. factor
            else v)
          v inflations
      in
      (k, v))
    kvs

let diff baseline candidate rel_time rel_count abs_time abs_count strict verbose inflate =
  let inflations = List.map parse_inflate inflate in
  let base = load baseline in
  let cand = apply_inflations inflations (load candidate) in
  let cand_tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace cand_tbl k v) cand;
  let base_tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace base_tbl k v) base;
  let regressions = ref 0 and compared = ref 0 and missing = ref 0 in
  List.iter
    (fun (key, old_v) ->
      match Hashtbl.find_opt cand_tbl key with
      | None ->
          incr missing;
          Printf.printf "%s %s: present in baseline only\n"
            (if strict then "REGRESSION" else "note")
            key;
          if strict then incr regressions
      | Some new_v ->
          incr compared;
          let rel, abs_floor =
            if time_like key then (rel_time, abs_time) else (rel_count, abs_count)
          in
          let allowed = (Float.abs old_v *. rel) +. abs_floor in
          if new_v -. old_v > allowed then begin
            incr regressions;
            Printf.printf "REGRESSION %s: %g -> %g (+%.1f%%, tolerance %g)\n" key old_v new_v
              (if Float.abs old_v > 0. then (new_v -. old_v) /. Float.abs old_v *. 100.
               else infinity)
              allowed
          end
          else if verbose then Printf.printf "ok %s: %g -> %g\n" key old_v new_v)
    base;
  let added =
    List.length (List.filter (fun (k, _) -> not (Hashtbl.mem base_tbl k)) cand)
  in
  Printf.printf "benchdiff: %d keys compared, %d regression(s), %d missing, %d added\n%!"
    !compared !regressions !missing added;
  exit (if !regressions > 0 then 1 else 0)

let cmd =
  let pos_file i docv doc = Arg.(required & pos i (some file) None & info [] ~docv ~doc) in
  Cmd.v
    (Cmd.info "benchdiff"
       ~doc:"compare two benchmark baseline files and exit 1 on regressions")
    Term.(
      const diff
      $ pos_file 0 "BASELINE" "committed baseline (BENCH_obs.json or BENCH_trajectory.json)"
      $ pos_file 1 "CANDIDATE" "candidate run to gate (same schema)"
      $ Arg.(
          value
          & opt float 0.15
          & info [ "rel-tol-time" ] ~docv:"FRAC"
              ~doc:"relative tolerance for time-like keys (suffix _s)")
      $ Arg.(
          value
          & opt float 0.10
          & info [ "rel-tol-count" ] ~docv:"FRAC" ~doc:"relative tolerance for counter keys")
      $ Arg.(
          value
          & opt float 0.002
          & info [ "abs-floor-time" ] ~docv:"SECONDS"
              ~doc:"absolute slack added to every time comparison (noise floor)")
      $ Arg.(
          value
          & opt float 8.0
          & info [ "abs-floor-count" ] ~docv:"N"
              ~doc:"absolute slack added to every counter comparison")
      $ Arg.(
          value & flag
          & info [ "strict" ] ~doc:"keys present only in the baseline are regressions too")
      $ Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"print every compared key")
      $ Arg.(
          value
          & opt_all string []
          & info [ "inflate" ] ~docv:"REGEX=FACTOR"
              ~doc:
                "multiply candidate values whose full key matches REGEX by FACTOR before \
                 comparing — seeds a synthetic regression so CI can prove the gate trips"))

let () =
  match Cmd.eval_value cmd with
  | Ok (`Ok () | `Help | `Version) -> exit 0
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 1
