(* idq: solve a DQDIMACS file with the instantiation-based baseline.

   Exit codes (same convention as hqs_cli):
     10        SAT
     20        UNSAT
     2         usage error / invalid input (incl. command-line errors)
     1         internal error (uncaught exception)
     124       wall-clock timeout            ("s cnf TIMEOUT")
     125       memory budget exhausted       ("s cnf MEMOUT")
     128+sig   aborted by SIGINT (130) / SIGTERM (143), after printing
               "c aborted (signal ...)" *)

open Cmdliner

let install_signal_handlers () =
  let handle name code signo =
    try
      Sys.set_signal signo
        (Sys.Signal_handle
           (fun _ ->
             Printf.printf "c aborted (signal %s)\n%!" name;
             exit code))
    with Invalid_argument _ | Sys_error _ -> ()
  in
  handle "SIGINT" 130 Sys.sigint;
  handle "SIGTERM" 143 Sys.sigterm

let solve file timeout mem_limit node_limit show_stats =
  install_signal_handlers ();
  let pcnf =
    try Dqbf.Pcnf.parse_file file
    with Failure msg | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  in
  (match Dqbf.Pcnf.validate pcnf with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "invalid input: %s\n" msg;
      exit 2);
  let budget =
    match timeout with
    | None -> Hqs_util.Budget.unlimited
    | Some s -> Hqs_util.Budget.of_seconds s
  in
  let budget =
    match mem_limit with
    | None -> budget
    | Some mb -> Hqs_util.Budget.with_mem_limit_mb budget mb
  in
  match Idq.solve_pcnf ~budget ?node_limit pcnf with
  | answer, stats ->
      if show_stats then
        Printf.eprintf "c rounds=%d ground-vars=%d instance-nodes=%d total=%.3fs\n"
          stats.Idq.rounds stats.Idq.ground_vars stats.Idq.instance_nodes stats.Idq.total_time;
      if answer then begin
        print_endline "s cnf SAT";
        exit 10
      end
      else begin
        print_endline "s cnf UNSAT";
        exit 20
      end
  | exception Hqs_util.Budget.Timeout ->
      print_endline "s cnf TIMEOUT";
      exit 124
  | exception Hqs_util.Budget.Out_of_memory_budget ->
      print_endline "s cnf MEMOUT";
      exit 125

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"DQDIMACS input")

let timeout =
  Arg.(value & opt (some float) None & info [ "timeout"; "t" ] ~docv:"SECONDS" ~doc:"wall-clock limit")

let mem_limit =
  Arg.(
    value
    & opt (some int) None
    & info [ "mem-limit" ] ~docv:"MB"
        ~doc:"heap ceiling in megabytes (sampled from the OCaml GC; exceeding it is a memout)")

let node_limit =
  Arg.(
    value
    & opt (some int) None
    & info [ "node-limit" ] ~docv:"N" ~doc:"ground-instance AIG node budget")

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"print statistics to stderr")

let cmd =
  let doc = "instantiation-based DQBF solving (iDQ-style baseline)" in
  Cmd.v (Cmd.info "idq" ~doc) Term.(const solve $ file $ timeout $ mem_limit $ node_limit $ stats)

(* cmdliner's own exit codes (124/125) collide with the timeout/memout
   convention above, so map evaluation outcomes explicitly *)
let () =
  match Cmd.eval_value cmd with
  | Ok (`Ok () | `Help | `Version) -> exit 0
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 1
