(* tracecheck: validate a Chrome trace_event JSON file produced by
   hqs --trace. Checks that the file parses as JSON, that it carries a
   traceEvents array, that Begin/End events are properly nested, and
   (optionally) that at least N distinct span names appear — the CI
   smoke test uses this to assert the trace actually covers the
   pipeline. Exit 0 on success, 1 on a malformed trace, 2 on usage
   errors. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let fail fmt = Printf.ksprintf (fun msg -> Printf.eprintf "tracecheck: %s\n" msg; exit 1) fmt

let check file min_spans verbose =
  let body =
    match read_file file with
    | s -> s
    | exception Sys_error msg -> fail "%s" msg
  in
  let json = match Obs.Json.parse body with Ok j -> j | Error msg -> fail "invalid JSON: %s" msg in
  let events =
    match Obs.Json.member "traceEvents" json with
    | None -> fail "no traceEvents member"
    | Some ev -> ( match Obs.Json.to_list ev with None -> fail "traceEvents is not an array" | Some l -> l)
  in
  let str_field name ev =
    match Obs.Json.member name ev with None -> None | Some v -> Obs.Json.to_string v
  in
  let stack = ref [] in
  let names = Hashtbl.create 32 in
  let last_ts = ref neg_infinity in
  List.iteri
    (fun i ev ->
      let name = match str_field "name" ev with Some n -> n | None -> fail "event %d: no name" i in
      let ph = match str_field "ph" ev with Some p -> p | None -> fail "event %d: no ph" i in
      (match Obs.Json.member "ts" ev with
      | Some ts -> (
          match Obs.Json.to_number ts with
          | Some t ->
              if t < !last_ts then fail "event %d (%s): timestamps not monotone" i name;
              last_ts := t
          | None -> fail "event %d (%s): ts is not a number" i name)
      | None -> fail "event %d (%s): no ts" i name);
      match ph with
      | "B" ->
          Hashtbl.replace names name ();
          stack := name :: !stack
      | "E" -> (
          match !stack with
          | top :: rest ->
              if not (String.equal top name) then
                fail "event %d: E %S closes open span %S" i name top;
              stack := rest
          | [] -> fail "event %d: E %S with no open span" i name)
      | "i" -> ()
      | other -> fail "event %d (%s): unexpected phase %S" i name other)
    events;
  (match !stack with
  | [] -> ()
  | open_ -> fail "%d span(s) left open: %s" (List.length open_) (String.concat ", " open_));
  let distinct = Hashtbl.length names in
  if distinct < min_spans then
    fail "only %d distinct span name(s), expected at least %d" distinct min_spans;
  if verbose then begin
    let sorted = List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) names []) in
    Printf.printf "ok: %d events, %d distinct spans: %s\n" (List.length events) distinct
      (String.concat ", " sorted)
  end
  else Printf.printf "ok: %d events, %d distinct spans\n" (List.length events) distinct

let cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Chrome trace JSON file")
  in
  let min_spans =
    Arg.(
      value
      & opt int 1
      & info [ "min-spans" ] ~docv:"N" ~doc:"require at least N distinct span names")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"list the span names") in
  Cmd.v
    (Cmd.info "tracecheck" ~doc:"validate a Chrome trace produced by hqs --trace")
    Term.(const check $ file $ min_spans $ verbose)

(* cmdliner's default cli-error code (124) collides with the repo's
   timeout exit convention; map evaluation outcomes explicitly *)
let () =
  match Cmd.eval_value cmd with
  | Ok (`Ok () | `Help | `Version) -> exit 0
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 1
