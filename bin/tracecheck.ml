(* tracecheck: validate a Chrome trace_event JSON file produced by
   hqs --trace / hqs sweep --trace. Checks that the file parses as
   JSON, that it carries a traceEvents array, that Begin/End events are
   properly nested per (pid, tid) row, that timestamps are monotone
   within each pid, and that every parent_span link names a span_id
   that actually appears as a Begin event — the cross-process stitching
   contract of the fork-spanning tracer. CI uses --min-pids /
   --min-cross-links to assert a sweep trace really merged worker
   processes, and --min-spans to assert pipeline coverage. Exit 0 on
   success, 1 on a malformed trace, 2 on usage errors. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let fail fmt = Printf.ksprintf (fun msg -> Printf.eprintf "tracecheck: %s\n" msg; exit 1) fmt

type ev = {
  idx : int;
  name : string;
  ph : string;
  ts : float;
  pid : int;
  tid : int;
  args : Obs.Json.t option;
}

let arg_str name ev =
  match ev.args with
  | None -> None
  | Some args -> (
      match Obs.Json.member name args with Some (Obs.Json.Str s) -> Some s | _ -> None)

(* --json-only: generic JSON round-trip stability (parse -> render ->
   re-parse -> compare), no trace semantics. CI uses this to assert the
   lint/deepcheck --json output is well-formed Obs.Json. *)
let json_roundtrip file body =
  let json =
    match Obs.Json.parse body with Ok j -> j | Error msg -> fail "invalid JSON: %s" msg
  in
  let rendered = Obs.Json.render json in
  let reparsed =
    match Obs.Json.parse rendered with
    | Ok j -> j
    | Error msg -> fail "rendered JSON does not re-parse: %s" msg
  in
  if not (String.equal rendered (Obs.Json.render reparsed)) then
    fail "JSON round-trip is not stable for %s" file;
  Printf.printf "ok: %s round-trips through Obs.Json (%d bytes rendered)\n" file
    (String.length rendered)

let check file json_only min_spans min_pids min_cross_links verbose =
  let body =
    match read_file file with
    | s -> s
    | exception Sys_error msg -> fail "%s" msg
  in
  if json_only then begin
    json_roundtrip file body;
    exit 0
  end;
  let json = match Obs.Json.parse body with Ok j -> j | Error msg -> fail "invalid JSON: %s" msg in
  let raw_events =
    match Obs.Json.member "traceEvents" json with
    | None -> fail "no traceEvents member"
    | Some ev -> ( match Obs.Json.to_list ev with None -> fail "traceEvents is not an array" | Some l -> l)
  in
  let events =
    List.mapi
      (fun i ev ->
        let str name =
          match Obs.Json.member name ev with None -> None | Some v -> Obs.Json.to_string v
        in
        let num name =
          match Obs.Json.member name ev with None -> None | Some v -> Obs.Json.to_number v
        in
        let name = match str "name" with Some n -> n | None -> fail "event %d: no name" i in
        let ph = match str "ph" with Some p -> p | None -> fail "event %d: no ph" i in
        let ts =
          match num "ts" with
          | Some t -> t
          | None -> fail "event %d (%s): no numeric ts" i name
        in
        let int_field f d = match num f with Some v -> int_of_float v | None -> d in
        {
          idx = i;
          name;
          ph;
          ts;
          pid = int_field "pid" 1;
          tid = int_field "tid" 1;
          args = Obs.Json.member "args" ev;
        })
      raw_events
  in
  (* per-pid timestamp monotonicity: each process row is one buffer
     recorded in order (worker batches merge as contiguous runs), so a
     backwards step inside a pid means a torn or mis-merged trace *)
  let last_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
  (* strict B/E nesting per (pid, tid) row *)
  let stacks : (int * int, string list) Hashtbl.t = Hashtbl.create 16 in
  let names = Hashtbl.create 32 in
  let pids = Hashtbl.create 8 in
  (* span_id -> pid of the Begin that declared it *)
  let span_ids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let parent_links = ref [] in
  List.iter
    (fun ev ->
      Hashtbl.replace pids ev.pid ();
      (match Hashtbl.find_opt last_ts ev.pid with
      | Some t when ev.ts < t ->
          fail "event %d (%s): timestamps not monotone within pid %d" ev.idx ev.name ev.pid
      | _ -> ());
      Hashtbl.replace last_ts ev.pid ev.ts;
      let key = (ev.pid, ev.tid) in
      let stack = Option.value ~default:[] (Hashtbl.find_opt stacks key) in
      match ev.ph with
      | "B" ->
          Hashtbl.replace names ev.name ();
          (match arg_str "span_id" ev with
          | Some id -> Hashtbl.replace span_ids id ev.pid
          | None -> ());
          (match arg_str "parent_span" ev with
          | Some parent -> parent_links := (ev, parent) :: !parent_links
          | None -> ());
          Hashtbl.replace stacks key (ev.name :: stack)
      | "E" -> (
          match stack with
          | top :: rest ->
              if not (String.equal top ev.name) then
                fail "event %d: E %S closes open span %S (pid %d, tid %d)" ev.idx ev.name top
                  ev.pid ev.tid;
              Hashtbl.replace stacks key rest
          | [] ->
              fail "event %d: E %S with no open span (pid %d, tid %d)" ev.idx ev.name ev.pid
                ev.tid)
      | "i" -> ()
      | other -> fail "event %d (%s): unexpected phase %S" ev.idx ev.name other)
    events;
  Hashtbl.iter
    (fun (pid, tid) stack ->
      if stack <> [] then
        fail "%d span(s) left open on pid %d tid %d: %s" (List.length stack) pid tid
          (String.concat ", " stack))
    stacks;
  (* every parent_span must name a span_id that exists somewhere in the
     trace; links whose ends live in different pids are the cross-process
     stitches the sweep supervisor mints *)
  let cross_links =
    List.fold_left
      (fun acc (ev, parent) ->
        match Hashtbl.find_opt span_ids parent with
        | None ->
            fail "event %d (%s): parent_span %S matches no span_id in the trace" ev.idx ev.name
              parent
        | Some parent_pid -> if parent_pid <> ev.pid then acc + 1 else acc)
      0 (List.rev !parent_links)
  in
  let distinct = Hashtbl.length names in
  if distinct < min_spans then
    fail "only %d distinct span name(s), expected at least %d" distinct min_spans;
  let npids = Hashtbl.length pids in
  if npids < min_pids then fail "only %d distinct pid(s), expected at least %d" npids min_pids;
  if cross_links < min_cross_links then
    fail "only %d cross-pid parent link(s), expected at least %d" cross_links min_cross_links;
  if verbose then begin
    let sorted = List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) names []) in
    Printf.printf "ok: %d events, %d distinct spans, %d pid(s), %d cross-pid link(s): %s\n"
      (List.length events) distinct npids cross_links (String.concat ", " sorted)
  end
  else
    Printf.printf "ok: %d events, %d distinct spans, %d pid(s), %d cross-pid link(s)\n"
      (List.length events) distinct npids cross_links

let cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Chrome trace JSON file")
  in
  let min_spans =
    Arg.(
      value
      & opt int 1
      & info [ "min-spans" ] ~docv:"N" ~doc:"require at least N distinct span names")
  in
  let min_pids =
    Arg.(
      value
      & opt int 1
      & info [ "min-pids" ] ~docv:"N" ~doc:"require at least N distinct process rows")
  in
  let min_cross_links =
    Arg.(
      value
      & opt int 0
      & info [ "min-cross-links" ] ~docv:"N"
          ~doc:
            "require at least N parent_span links whose Begin lives in a different pid than \
             the span_id it names (cross-process trace stitches)")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"list the span names") in
  let json_only =
    Arg.(
      value
      & flag
      & info [ "json-only" ]
          ~doc:
            "only check that the file is JSON that round-trips through Obs.Json \
             (parse/render/re-parse); skip all trace semantics")
  in
  Cmd.v
    (Cmd.info "tracecheck" ~doc:"validate a Chrome trace produced by hqs --trace")
    Term.(const check $ file $ json_only $ min_spans $ min_pids $ min_cross_links $ verbose)

(* cmdliner's default cli-error code (124) collides with the repo's
   timeout exit convention; map evaluation outcomes explicitly *)
let () =
  match Cmd.eval_value cmd with
  | Ok (`Ok () | `Help | `Version) -> exit 0
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 1
