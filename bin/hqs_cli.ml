(* hqs: solve a DQDIMACS file with the elimination-based solver.

   Exit codes (SAT-competition convention for verdicts, split abort
   codes so a harness can tell the failure modes apart):
     10        SAT
     20        UNSAT
     2         usage error / invalid input (incl. command-line errors)
     1         internal error (uncaught exception)
     3         soundness-check violation     ("s cnf ERROR"; an invariant
               audit armed with --check / HQS_CHECK tripped)
     124       wall-clock timeout            ("s cnf TIMEOUT")
     125       memory budget exhausted       ("s cnf MEMOUT"; AIG node
               limit or --mem-limit heap governor)
     128+sig   aborted by SIGINT (130) / SIGTERM (143), after printing
               "c aborted (signal ...)" *)

open Cmdliner

let install_signal_handlers () =
  let handle name code signo =
    try
      Sys.set_signal signo
        (Sys.Signal_handle
           (fun _ ->
             Printf.printf "c aborted (signal %s)\n%!" name;
             exit code))
    with Invalid_argument _ | Sys_error _ -> ()
  in
  handle "SIGINT" 130 Sys.sigint;
  handle "SIGTERM" 143 Sys.sigterm

(* the flag overrides the environment, mirroring --check / HQS_CHECK *)
let resolve_dep_scheme = function
  | Some s -> (
      match Analysis.Scheme.of_string s with
      | Some scheme -> scheme
      | None ->
          Printf.eprintf "error: --dep-scheme %s: expected trivial or rp\n" s;
          exit 2)
  | None -> (
      match Analysis.Scheme.of_env () with
      | Ok scheme -> scheme
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 2)

(* same pattern for the inprocessing engine: --inproc beats HQS_INPROC *)
let resolve_inproc = function
  | Some s -> (
      match Inproc.mode_of_string s with
      | Some m -> m
      | None ->
          Printf.eprintf "error: --inproc %s: expected off, on or full\n" s;
          exit 2)
  | None -> (
      match Inproc.mode_of_env () with
      | Ok m -> m
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 2)

let solve file timeout mem_limit node_limit no_preprocess no_unitpure no_maxsat no_thm2 bce
    expand_all sat_probe no_fraig search_backend no_restart chaos_seed chaos_points check
    dep_scheme inproc certify show_model show_stats trace show_metrics =
  install_signal_handlers ();
  let trace_file =
    match trace with
    | Some f -> Some f
    | None -> ( match Sys.getenv_opt "HQS_TRACE" with None | Some "" -> None | Some f -> Some f)
  in
  (* the flag overrides the environment, mirroring --check / HQS_CHECK *)
  let certify_path =
    match certify with
    | Some p -> Some p
    | None -> (
        match Sys.getenv_opt "HQS_CERTIFY" with None | Some "" -> None | Some p -> Some p)
  in
  let check_level =
    match check with
    | Some s -> (
        (* the flag overrides the environment *)
        match Check.level_of_string s with
        | Some l -> l
        | None ->
            Printf.eprintf "error: --check %s: expected off, cheap or full\n" s;
            exit 2)
    | None -> (
        match Check.level_of_env () with
        | Ok l -> l
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 2)
  in
  let pcnf =
    try Dqbf.Pcnf.parse_file file
    with Failure msg | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  in
  (match Dqbf.Pcnf.validate pcnf with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "invalid input: %s\n" msg;
      exit 2);
  let chaos =
    match chaos_seed with
    | None -> Hqs_util.Chaos.off
    | Some seed ->
        let points =
          match chaos_points with None -> [] | Some s -> Hqs_util.Chaos.parse_points s
        in
        Hqs_util.Chaos.create ~seed ~points ()
  in
  let config =
    {
      Hqs.default_config with
      preprocess =
        (if no_preprocess then Dqbf.Preprocess.off
         else
           {
             Dqbf.Preprocess.default_config with
             blocked_clauses = bce;
             inproc = resolve_inproc inproc;
           });
      use_unitpure = not no_unitpure;
      use_maxsat = not no_maxsat;
      use_thm2 = not no_thm2;
      use_fraig = not no_fraig;
      mode = (if expand_all then Hqs.Expand_all else Hqs.Elimination);
      use_sat_probe = sat_probe;
      qbf_backend = (if search_backend then Hqs.Search_backend else Hqs.Elim_backend);
      node_limit;
      chaos;
      restart_on_memout = not no_restart;
      check_level;
      dep_scheme = resolve_dep_scheme dep_scheme;
    }
  in
  let budget =
    match timeout with
    | None -> Hqs_util.Budget.unlimited
    | Some s -> Hqs_util.Budget.of_seconds s
  in
  let budget =
    match mem_limit with
    | None -> budget
    | Some mb -> Hqs_util.Budget.with_mem_limit_mb budget mb
  in
  if Option.is_some trace_file then Obs.Trace.start ();
  (* emit the observability artifacts on every exit path — a timeout or
     memout trace is exactly the one worth looking at *)
  let finish_obs () =
    (match trace_file with
    | None -> ()
    | Some path -> (
        Obs.Trace.stop ();
        (match Obs.Trace.write_chrome_json path with
        | () ->
            Printf.eprintf "c trace: %d events -> %s%s\n%!" (List.length (Obs.Trace.events ()))
              path
              (let d = Obs.Trace.dropped () in
               if d > 0 then Printf.sprintf " (%d dropped)" d else "")
        | exception Sys_error msg -> Printf.eprintf "c trace write failed: %s\n%!" msg);
        if show_stats then prerr_string (Obs.Trace.flame_summary ())));
    if show_metrics then
      List.iter
        (fun (name, v) -> Printf.eprintf "c metric %s %g\n" name v)
        (Obs.Metrics.to_assoc (Obs.Metrics.snapshot ()))
  in
  (* certifying solve with the audit-failure recovery loop: a
     certificate that fails its own Post_certify audit is treated like a
     crash — re-solve with checks escalated to Full and degradation and
     fault injection off, under the seeded backoff schedule, and give up
     with exit 3 after bounded attempts (mirroring the serve daemon) *)
  let solve_certified path =
    let instance_text =
      try In_channel.with_open_bin file In_channel.input_all
      with Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    in
    let max_attempts = 3 in
    let rec attempt n cfg =
      match Hqs.solve_pcnf_certified ~config:cfg ~budget ~instance_text pcnf with
      | verdict, cert, _model, stats ->
          (match Cert.write_file path cert with
          | () -> Printf.printf "c certificate: %s (%s)\n" path (Cert.status cert)
          | exception Sys_error msg ->
              Printf.eprintf "error: cannot write certificate: %s\n" msg;
              exit 2);
          (verdict, stats)
      | exception Check.Violation ({ Check.stage = Check.Post_certify; _ } as v) ->
          Format.eprintf "c certificate audit failed (attempt %d/%d): %a@." n max_attempts
            Check.pp_violation v;
          if n >= max_attempts then begin
            finish_obs ();
            print_endline "s cnf ERROR";
            exit 3
          end
          else begin
            Unix.sleepf (Exec.Backoff.delay Exec.Backoff.default ~task:"certify" ~attempt:n);
            attempt (n + 1)
              {
                cfg with
                Hqs.check_level = Check.Full;
                chaos = Hqs_util.Chaos.off;
                restart_on_memout = false;
              }
          end
    in
    attempt 1 config
  in
  let run () =
    match certify_path with
    | Some path -> solve_certified path
    | None ->
    if show_model then begin
      let verdict, model, stats = Hqs.solve_pcnf_model ~config ~budget pcnf in
      (match (verdict, model) with
      | Hqs.Sat, Some model ->
          (* print each Skolem function as a truth table over its deps *)
          List.iter
            (fun (y, deps) ->
              Printf.printf "v %d :" (y + 1);
              let k = List.length deps in
              if k <= 6 then
                for bits = 0 to (1 lsl k) - 1 do
                  let env v =
                    match List.find_index (fun d -> d = v) deps with
                    | Some i -> bits land (1 lsl i) <> 0
                    | None -> false
                  in
                  Printf.printf " %d" (if Dqbf.Skolem.eval model y env then 1 else 0)
                done
              else Printf.printf " <%d-input function>" k;
              print_newline ())
            pcnf.Dqbf.Pcnf.exists;
          (* independent certificate check *)
          let original = Dqbf.Pcnf.to_formula pcnf in
          (match Dqbf.Skolem.verify original model with
          | Ok () -> print_endline "c model verified"
          | Error e -> Format.printf "c MODEL REJECTED: %a@." Dqbf.Skolem.pp_failure e)
      | _ -> ());
      (verdict, stats)
    end
    else Hqs.solve_pcnf ~config ~budget pcnf
  in
  match run () with
  | verdict, stats ->
      if show_stats then Format.eprintf "c %a@." Hqs.pp_stats stats;
      finish_obs ();
      (match verdict with
      | Hqs.Sat ->
          print_endline "s cnf SAT";
          exit 10
      | Hqs.Unsat ->
          print_endline "s cnf UNSAT";
          exit 20)
  | exception Hqs_util.Budget.Timeout ->
      finish_obs ();
      print_endline "s cnf TIMEOUT";
      exit 124
  | exception Hqs_util.Budget.Out_of_memory_budget ->
      finish_obs ();
      print_endline "s cnf MEMOUT";
      exit 125
  | exception Check.Violation v ->
      finish_obs ();
      Format.printf "c check violation: %a@." Check.pp_violation v;
      print_endline "s cnf ERROR";
      exit 3

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"DQDIMACS input")

let timeout =
  Arg.(value & opt (some float) None & info [ "timeout"; "t" ] ~docv:"SECONDS" ~doc:"wall-clock limit")

let mem_limit =
  Arg.(
    value
    & opt (some int) None
    & info [ "mem-limit" ] ~docv:"MB"
        ~doc:"heap ceiling in megabytes (sampled from the OCaml GC; exceeding it is a memout)")

let node_limit =
  Arg.(
    value
    & opt (some int) None
    & info [ "node-limit" ] ~docv:"N" ~doc:"AIG node budget (memout emulation)")

let chaos_seed =
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos-seed" ] ~docv:"SEED"
        ~doc:"arm deterministic fault injection with this seed (testing the degradation ladder)")

let chaos_points =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos-points" ] ~docv:"P1,P2,..."
        ~doc:"restrict injection to these points (default: all points)")

let check =
  Arg.(
    value
    & opt (some string) None
    & info [ "check" ] ~docv:"LEVEL"
        ~doc:
          "soundness-auditor depth at every stage boundary: off, cheap (prefix invariants) or \
           full (deep AIG audit + Skolem certification); overrides \\$(b,HQS_CHECK)")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "record hierarchical spans of the solve pipeline and write them as Chrome trace_event \
           JSON (open in chrome://tracing or Perfetto); the \\$(b,HQS_TRACE) environment variable \
           names a file with the same effect. Tracing is off by default and costs one branch per \
           span when disabled")

let dep_scheme =
  Arg.(
    value
    & opt (some string) None
    & info [ "dep-scheme" ] ~docv:"SCHEME"
        ~doc:
          "static dependency scheme applied to the prefix before solving: trivial (keep the \
           prefix as written) or rp (resolution-path pruning, the default); overrides \
           \\$(b,HQS_DEP_SCHEME)")

let inproc =
  Arg.(
    value
    & opt (some string) None
    & info [ "inproc" ] ~docv:"MODE"
        ~doc:
          "CNF inprocessing engine run between parsing and AIG construction: off, on (unit \
           propagation, universal reduction, BIG/SCC equivalence substitution, subsumption \
           and self-subsumption; the default) or full (additionally failed-literal probing \
           and dependency-aware bounded variable elimination); overrides \\$(b,HQS_INPROC)")

let certify_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "certify" ] ~docv:"FILE"
        ~doc:
          "materialize an externally checkable certificate artifact at $(i,FILE): a \
           Skolem-AIG on SAT, a universal-expansion refutation on small UNSAT instances, an \
           explicit UNCERTIFIED marker past the expansion cap. Verify with \
           $(b,certcheck INSTANCE FILE), which shares no solver code. A certificate failing \
           its own audit triggers an escalated re-solve (checks full, degradation off) and \
           exit 3 after 3 attempts. Overrides \\$(b,HQS_CERTIFY)")

let flag names doc = Arg.(value & flag & info names ~doc)

(* -------------------------------------------------------- sweep command *)

(* hqs sweep: supervised benchmark sweep over DQDIMACS files. Each
   (file, solver) task runs in a forked worker under kernel limits; see
   Exec.Supervisor for the crash taxonomy. Exit codes:
     0  sweep completed; every task solved, timed out or memed out
     1  internal error (uncaught exception)
     2  usage error / unreadable or invalid input file
     3  sweep completed, but with quarantined crashes or a soundness
        disagreement between HQS and iDQ — the report names them *)

let family_of_path file =
  match Filename.basename (Filename.dirname file) with
  | "." | ".." | "/" | "" -> "files"
  | d -> d

let sweep files jobs timeout node_limit retries journal resume mem_limit cpu_limit chaos_seed
    chaos_points chaos_kill dep_scheme inproc certify_dir trace =
  install_signal_handlers ();
  if files = [] then begin
    Printf.eprintf "error: no input files\n";
    exit 2
  end;
  (match certify_dir with
  | None -> ()
  | Some dir -> (
      try Unix.mkdir dir 0o755 with
      | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
      | Unix.Unix_error (err, _, _) ->
          Printf.eprintf "error: mkdir %s: %s\n" dir (Unix.error_message err);
          exit 2));
  if Option.is_some trace then Obs.Trace.start ();
  let items =
    List.map
      (fun file ->
        let pcnf =
          try Dqbf.Pcnf.parse_file file
          with Failure msg | Sys_error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 2
        in
        (match Dqbf.Pcnf.validate pcnf with
        | Ok () -> ()
        | Error msg ->
            Printf.eprintf "invalid input %s: %s\n" file msg;
            exit 2);
        {
          Harness.Sweep.id = Filename.remove_extension (Filename.basename file);
          family = family_of_path file;
          pcnf;
        })
      files
  in
  (let seen = Hashtbl.create 16 in
   List.iter
     (fun (it : Harness.Sweep.item) ->
       if Hashtbl.mem seen it.Harness.Sweep.id then begin
         Printf.eprintf "error: duplicate instance id %s (same base name twice?)\n"
           it.Harness.Sweep.id;
         exit 2
       end;
       Hashtbl.replace seen it.Harness.Sweep.id ())
     items);
  let chaos =
    let points =
      (match chaos_points with None -> [] | Some s -> Hqs_util.Chaos.parse_points s)
      @
      (* convenience: arm the worker-kill point for every attempt of one
         task, so a quarantine is reproducible from the command line *)
      (match chaos_kill with
      | None -> []
      | Some task ->
          List.init retries (fun i -> Hqs_util.Chaos.worker_kill_point ~task ~attempt:(i + 1)))
    in
    match (chaos_seed, points) with
    | None, [] -> Hqs_util.Chaos.off
    | seed, points -> Hqs_util.Chaos.create ~seed:(Option.value seed ~default:0) ~points ()
  in
  let config =
    {
      (Harness.Sweep.default_config ~timeout ~node_limit) with
      (* an explicit flag pins the scheme/engine in every forked worker;
         without it workers inherit HQS_DEP_SCHEME / HQS_INPROC through
         the environment *)
      Harness.Sweep.hqs_config =
        (match (dep_scheme, inproc) with
        | None, None -> None
        | ds, ip ->
            let cfg = Hqs.default_config in
            let cfg =
              match ds with
              | None -> cfg
              | Some s -> { cfg with Hqs.dep_scheme = resolve_dep_scheme (Some s) }
            in
            let cfg =
              match ip with
              | None -> cfg
              | Some s ->
                  {
                    cfg with
                    Hqs.preprocess =
                      {
                        cfg.Hqs.preprocess with
                        Dqbf.Preprocess.inproc = resolve_inproc (Some s);
                      };
                  }
            in
            Some cfg);
      Harness.Sweep.certify_dir;
      Harness.Sweep.exec =
        {
          Exec.Supervisor.jobs;
          max_attempts = retries;
          backoff = Exec.Backoff.default;
          chaos;
          limits =
            {
              (* the kernel wall limit is a backstop over the in-process
                 budget: generous enough to never fire first *)
              Exec.Limits.wall_s = Some ((2.0 *. timeout) +. 10.0);
              cpu_s = cpu_limit;
              mem_bytes = Option.map (fun mb -> mb * 1024 * 1024) mem_limit;
            };
        };
    }
  in
  let n = 2 * List.length items in
  let count = ref 0 in
  let on_progress (p : Harness.Sweep.progress) =
    incr count;
    let show = function
      | Harness.Runner.Solved (true, t) -> Printf.sprintf "SAT %.2fs" t
      | Harness.Runner.Solved (false, t) -> Printf.sprintf "UNSAT %.2fs" t
      | Harness.Runner.Timeout _ -> "TO"
      | Harness.Runner.Memout _ -> "MO"
      | Harness.Runner.Crash _ -> "CRASH"
    in
    Printf.eprintf "c [%3d/%d] %-32s %-12s%s\n%!" !count n p.Harness.Sweep.task
      (show p.Harness.Sweep.outcome)
      (if p.Harness.Sweep.from_journal then " (journal)"
       else if p.Harness.Sweep.attempts > 1 then
         Printf.sprintf " (%d attempts)" p.Harness.Sweep.attempts
       else "")
  in
  let rep = Harness.Sweep.run ~config ?journal ?resume ~on_progress items in
  Printf.eprintf "c sweep: %d tasks executed, %d from journal%s\n%!"
    rep.Harness.Sweep.executed rep.Harness.Sweep.journaled
    (if rep.Harness.Sweep.journal_dropped > 0 then
       Printf.sprintf ", %d torn journal lines dropped" rep.Harness.Sweep.journal_dropped
     else "");
  let results = rep.Harness.Sweep.results in
  prerr_string (Harness.Report.table1 results);
  prerr_string (Harness.Report.headline results);
  print_string (Harness.Report.csv results);
  (match trace with
  | None -> ()
  | Some path -> (
      Obs.Trace.stop ();
      match Obs.Trace.write_chrome_json path with
      | () ->
          Printf.eprintf "c trace: %d events -> %s%s%s\n%!"
            (List.length (Obs.Trace.events ()))
            path
            (let d = Obs.Trace.dropped () in
             if d > 0 then Printf.sprintf " (%d dropped)" d else "")
            (if Obs.Trace.truncated () then " (truncated worker spans repaired)" else "")
      | exception Sys_error msg -> Printf.eprintf "c trace write failed: %s\n%!" msg));
  let bad r =
    (match r.Harness.Runner.soundness with
    | Harness.Runner.Consistent -> false
    | Harness.Runner.Disagreement _ -> true)
    ||
    match (r.Harness.Runner.hqs, r.Harness.Runner.idq) with
    | Harness.Runner.Crash _, _ | _, Harness.Runner.Crash _ -> true
    | _ -> false
  in
  exit (if List.exists bad results then 3 else 0)

let sweep_files =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"DQDIMACS inputs")

let jobs =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc:"concurrent worker processes")

let sweep_timeout =
  Arg.(value & opt float 5.0 & info [ "timeout"; "t" ] ~docv:"SECONDS" ~doc:"per-solve wall budget")

let sweep_node_limit =
  Arg.(
    value
    & opt int 400_000
    & info [ "node-limit" ] ~docv:"N" ~doc:"AIG node budget (memout emulation)")

let retries =
  Arg.(
    value
    & opt int 3
    & info [ "retries" ] ~docv:"K"
        ~doc:"worker spawns per task before it is quarantined as CRASH")

let journal =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:"append every completed task to this crash-safe JSONL journal (fsync per line)")

let resume =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "skip tasks that already have a checksum-valid line in this journal; torn trailing \
           lines from a killed run are detected and re-executed. May name the same file as \
           $(b,--journal)")

let sweep_mem_limit =
  Arg.(
    value
    & opt (some int) None
    & info [ "mem-limit" ] ~docv:"MB"
        ~doc:"kernel address-space limit (RLIMIT_AS) per worker; exceeding it is a memout")

let cpu_limit =
  Arg.(
    value
    & opt (some int) None
    & info [ "cpu-limit" ] ~docv:"SECONDS"
        ~doc:"kernel CPU limit (RLIMIT_CPU) per worker; exceeding it is a timeout")

let chaos_kill =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos-kill" ] ~docv:"TASK"
        ~doc:
          "arm a deterministic SIGKILL of every attempt of this task (e.g. \
           $(i,instance/hqs)) — fault-injection for the crash/quarantine path")

let sweep_cmd =
  let doc = "supervised process-isolated benchmark sweep over DQDIMACS files" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs HQS and iDQ on every $(i,FILE), each (file, solver) task in its own forked \
         worker process under kernel resource limits. Worker deaths the result protocol \
         cannot explain are retried with exponential backoff and eventually quarantined as \
         CRASH rows instead of aborting the sweep. The per-instance CSV goes to stdout; \
         progress, Table I and the headline summary go to stderr.";
      `S "EXIT STATUS";
      `P "0 on a clean sweep; 2 on usage or input errors; 3 when the sweep finished but \
          contains CRASH rows or an HQS/iDQ verdict disagreement; 1 on internal errors.";
    ]
  in
  Cmd.v
    (Cmd.info "sweep" ~doc ~man)
    Term.(
      const sweep $ sweep_files $ jobs $ sweep_timeout $ sweep_node_limit $ retries $ journal
      $ resume $ sweep_mem_limit $ cpu_limit $ chaos_seed $ chaos_points $ chaos_kill
      $ dep_scheme $ inproc
      $ Arg.(
          value
          & opt (some string) None
          & info [ "certify-dir" ] ~docv:"DIR"
              ~doc:
                "run every HQS task through the certifying entry point and drop a \
                 self-contained (instance, certificate) artifact pair per task under \
                 $(i,DIR) (created if missing); the journal and the CSV's trailing \
                 $(b,cert) column carry the artifact paths, verifiable offline with \
                 $(b,certcheck)")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "trace" ] ~docv:"FILE"
              ~doc:
                "write one merged multi-process Chrome trace: supervisor per-task spans on \
                 the main pid plus every worker's span buffer (shipped back over the result \
                 pipe) under its own pid row, linked by per-task trace ids. Workers killed \
                 mid-span are repaired and flagged truncated"))

(* ------------------------------------------------------ analyze command *)

(* hqs analyze: run the static dependency-scheme analyzer and the CNF
   inprocessing engine and print both reports, without solving. Exit
   codes: 0 on a successful analysis (regardless of what it pruned or
   simplified), 2 on usage/input errors, 3 when --check full refutes a
   pruned edge or an inprocessing witness fails its audit. *)

(* "c inproc ..." detail lines plus one machine-greppable "s inproc ..."
   summary, mirroring the "s analysis" convention *)
let print_inproc_report mode (outcome : Inproc.outcome) =
  let mname = Inproc.mode_name mode in
  match outcome with
  | Inproc.Unsat ->
      Printf.printf "c inproc mode=%s: refuted during simplification\n" mname;
      Printf.printf "s inproc mode=%s UNSAT\n" mname
  | Inproc.Simplified res ->
      let s = res.Inproc.stats in
      Printf.printf "c inproc mode=%s rounds=%d\n" mname s.Inproc.rounds;
      Printf.printf
        "c inproc units=%d reduced-lits=%d merges=%d subsumed=%d strengthened=%d \
         failed-lits=%d bve=%d\n"
        s.Inproc.units s.Inproc.reduced_lits s.Inproc.scc_merges s.Inproc.subsumed
        s.Inproc.strengthened s.Inproc.failed_lits s.Inproc.bve_eliminated;
      Printf.printf "c inproc clauses %d -> %d, literals %d -> %d, variables %d -> %d\n"
        s.Inproc.clauses_before s.Inproc.clauses_after s.Inproc.lits_before
        s.Inproc.lits_after s.Inproc.vars_before s.Inproc.vars_after;
      Printf.printf
        "s inproc mode=%s rounds=%d units=%d merges=%d subsumed=%d strengthened=%d \
         failed-lits=%d bve=%d clauses=%d->%d lits=%d->%d\n"
        mname s.Inproc.rounds s.Inproc.units s.Inproc.scc_merges s.Inproc.subsumed
        s.Inproc.strengthened s.Inproc.failed_lits s.Inproc.bve_eliminated
        s.Inproc.clauses_before s.Inproc.clauses_after s.Inproc.lits_before
        s.Inproc.lits_after

let analyze file dep_scheme check inproc =
  let scheme = resolve_dep_scheme dep_scheme in
  let check_level =
    match check with
    | Some s -> (
        match Check.level_of_string s with
        | Some l -> l
        | None ->
            Printf.eprintf "error: --check %s: expected off, cheap or full\n" s;
            exit 2)
    | None -> (
        match Check.level_of_env () with
        | Ok l -> l
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 2)
  in
  let pcnf =
    try Dqbf.Pcnf.parse_file file
    with Failure msg | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  in
  (match Dqbf.Pcnf.validate pcnf with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "invalid input: %s\n" msg;
      exit 2);
  let mode = resolve_inproc inproc in
  let _refined, report = Analysis.Rp.analyze ~scheme pcnf in
  (match
     Check.audit_dep_pruning ~level:check_level pcnf ~pruned:report.Analysis.Rp.pruned
   with
  | () -> Format.printf "%a@?" Analysis.Rp.pp_report report
  | exception Check.Violation v ->
      Format.printf "%a@?" Analysis.Rp.pp_report report;
      Format.printf "c check violation: %a@." Check.pp_violation v;
      print_endline "s analysis ERROR";
      exit 3);
  if mode <> Inproc.Off then begin
    let outcome =
      match Dqbf.Preprocess.run_inproc ~mode pcnf with
      | `Unsat -> Inproc.Unsat
      | `Done (_, res) -> Inproc.Simplified res
    in
    match Check.audit_inproc ~level:check_level pcnf outcome with
    | () -> print_inproc_report mode outcome
    | exception Check.Violation v ->
        print_inproc_report mode outcome;
        Format.printf "c check violation: %a@." Check.pp_violation v;
        print_endline "s inproc ERROR";
        exit 3
  end;
  exit 0

let analyze_cmd =
  let doc = "print the static dependency-scheme refinement report for a DQDIMACS file" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the resolution-path dependency analyzer (lib/analysis) on $(i,FILE) without \
         solving it: one $(b,v) line per existential shows the declared and refined \
         dependency sets, the $(b,c analysis) header lines count pruned edges and \
         incomparable pairs, and the final $(b,s analysis) line is machine-greppable. Unless \
         $(b,--inproc off), the CNF inprocessing engine (lib/inproc) is then run on the \
         instance and its rule counters and clause/literal/variable deltas are reported as \
         $(b,c inproc) lines with a machine-greppable $(b,s inproc) summary. With \
         $(b,--check full), a sample of pruned edges is validated semantically against the \
         reference expansion solver and every inprocessing witness is audited (exit 3 on \
         refutation).";
    ]
  in
  Cmd.v
    (Cmd.info "analyze" ~doc ~man)
    Term.(const analyze $ file $ dep_scheme $ check $ inproc)

(* -------------------------------------------------------- serve command *)

(* hqs serve: persistent solver daemon on a Unix-domain socket; see
   Serve.Daemon for the robustness contract. Exits 0 after a SIGTERM /
   SIGINT drain, 2 on usage errors (bad bounds, unbindable socket). *)

let resolve_check_level check =
  match check with
  | Some s -> (
      match Check.level_of_string s with
      | Some l -> l
      | None ->
          Printf.eprintf "error: --check %s: expected off, cheap or full\n" s;
          exit 2)
  | None -> (
      match Check.level_of_env () with
      | Ok l -> l
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 2)

let serve socket workers queue_cap timeout max_timeout kill_grace retries mem_limit node_limit
    cache check audit_period trace event_log chaos_seed chaos_points chaos_kill certify
    chaos_cert dep_scheme inproc =
  (* no install_signal_handlers: SIGTERM/SIGINT mean "drain", not "abort" *)
  let check_level = resolve_check_level check in
  let chaos =
    let points =
      (match chaos_points with None -> [] | Some s -> Hqs_util.Chaos.parse_points s)
      @
      (* convenience: kill the first dispatch of one job id — the retry
         then succeeds, which is the structured-reply-after-crash path *)
      (match chaos_kill with
      | None -> []
      | Some jid -> [ Serve.Daemon.kill_point ~jid ~attempt:1 ])
      @
      (* same shape for the certificate recovery loop: poison the first
         dispatch's artifact, so the escalated re-solve then verifies *)
      (match chaos_cert with
      | None -> []
      | Some jid -> [ Serve.Daemon.cert_point ~jid ~attempt:1 ])
    in
    match (chaos_seed, points) with
    | None, [] -> Hqs_util.Chaos.off
    | seed, points -> Hqs_util.Chaos.create ~seed:(Option.value seed ~default:0) ~points ()
  in
  let solver =
    {
      Hqs.default_config with
      Hqs.node_limit;
      check_level;
      dep_scheme = resolve_dep_scheme dep_scheme;
      preprocess =
        {
          Hqs.default_config.Hqs.preprocess with
          Dqbf.Preprocess.inproc = resolve_inproc inproc;
        };
    }
  in
  let config =
    {
      (Serve.Daemon.default ~socket_path:socket) with
      Serve.Daemon.workers;
      queue_cap;
      default_timeout_s = timeout;
      max_timeout_s = max_timeout;
      kill_grace_s = kill_grace;
      max_attempts = retries;
      mem_limit_mb = mem_limit;
      chaos;
      check_level;
      audit_period;
      cache_path = cache;
      trace_path = trace;
      event_log;
      solver;
      certify;
    }
  in
  Printf.eprintf "c serve: listening on %s (%d workers, queue cap %d)\n%!" socket workers
    queue_cap;
  match Serve.Daemon.run config with
  | () ->
      Printf.eprintf "c serve: drained, exiting\n%!";
      exit 0
  | exception Invalid_argument msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  | exception Unix.Unix_error (err, fn, arg) ->
      Printf.eprintf "error: %s(%s): %s\n" fn arg (Unix.error_message err);
      exit 2

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path of the daemon")

let serve_cmd =
  let doc = "persistent solver daemon with a worker pool and a canonical-form verdict cache" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Listens on a Unix-domain socket and dispatches DQDIMACS solve requests to a pool of \
         forked solver workers under per-request wall/heap budgets. Crashed workers are \
         respawned with exponential-backoff quarantine and the affected request is retried; \
         clients always receive a structured reply (verdict, timeout, memout, crash, \
         overloaded, draining) — never a hung connection. Verdicts are memoized under a \
         canonical form of the instance (variable renaming + clause reordering invariant); \
         with $(b,--check full), every $(b,--audit-period)-th cache hit is re-solved and \
         compared. SIGTERM drains gracefully: in-flight requests finish, new ones are \
         refused, exit code 0.";
      `S "EXIT STATUS";
      `P "0 after a graceful drain; 2 on usage errors; 1 on internal errors.";
    ]
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man)
    Term.(
      const serve $ socket_arg
      $ Arg.(value & opt int 2 & info [ "workers"; "j" ] ~docv:"N" ~doc:"worker pool size")
      $ Arg.(
          value
          & opt int 16
          & info [ "queue-cap" ] ~docv:"N"
              ~doc:"admission queue bound; beyond it requests are shed with `overloaded'")
      $ Arg.(
          value
          & opt float 60.0
          & info [ "timeout"; "t" ] ~docv:"SECONDS"
              ~doc:"default per-request wall budget (clients may ask for less)")
      $ Arg.(
          value
          & opt float 600.0
          & info [ "max-timeout" ] ~docv:"SECONDS" ~doc:"ceiling on client-requested budgets")
      $ Arg.(
          value
          & opt float 2.0
          & info [ "kill-grace" ] ~docv:"SECONDS"
              ~doc:"SIGKILL a worker this long past its request deadline")
      $ Arg.(
          value
          & opt int 3
          & info [ "retries" ] ~docv:"K"
              ~doc:"dispatches per request before a structured `crash' reply")
      $ sweep_mem_limit $ node_limit
      $ Arg.(
          value
          & opt (some string) None
          & info [ "cache" ] ~docv:"FILE"
              ~doc:
                "persist the verdict cache to this checksummed append-only journal and \
                 preload it on start")
      $ check
      $ Arg.(
          value
          & opt int 4
          & info [ "audit-period" ] ~docv:"N"
              ~doc:
                "with --check full, re-solve every Nth cache hit and compare verdicts (0 \
                 disables auditing)")
      $ trace
      $ Arg.(
          value
          & opt (some string) None
          & info [ "event-log" ] ~docv:"FILE"
              ~doc:
                "append one checksummed JSONL line per lifecycle event (admissions, sheds, \
                 crashes, retries, quarantines, timeouts, cache audits, respawns, drain) \
                 with per-request trace ids; the file is size-rotated to $(i,FILE).1 at 1 \
                 MiB")
      $ chaos_seed $ chaos_points
      $ Arg.(
          value
          & opt (some int) None
          & info [ "chaos-kill" ] ~docv:"JID"
              ~doc:
                "arm a deterministic SIGKILL of the first dispatch of this job id (job ids \
                 count from 1 in admission order)")
      $ Arg.(
          value
          & flag
          & info [ "certify" ]
              ~doc:
                "solve through the certifying entry point and audit every certificate \
                 artifact in the worker; an audit failure tombstones the cache entry, \
                 retries the job with checks escalated to full, and quarantines it past \
                 $(b,--retries) attempts. Clients asking with $(b,hqs query --certify) \
                 receive the verified artifact inline")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "chaos-cert" ] ~docv:"JID"
              ~doc:
                "arm a deterministic corruption of this job id's certificate on its first \
                 dispatch, before the in-worker audit — the fault-injection drill for the \
                 audit-failure recovery loop (requires $(b,--certify))")
      $ dep_scheme $ inproc)

(* -------------------------------------------------------- query command *)

(* hqs query: one request against a running daemon. Exit codes:
     10/20     SAT/UNSAT (cached or fresh)
     124/125   structured timeout / memout reply
     5         request failed after worker crashes
     75        daemon overloaded or draining (EX_TEMPFAIL: retry later)
     3         cache audit failure ("s cnf ERROR")
     2         usage error, invalid instance, or daemon unreachable
     0         --ping / --stats *)

(* one introspection snapshot, shared by `hqs top` and `hqs query --health` *)
let render_health (h : Serve.Proto.health) =
  let m name =
    match List.assoc_opt name h.Serve.Proto.h_metrics with Some v -> v | None -> 0.
  in
  Printf.printf "c uptime %.1fs%s\n" h.Serve.Proto.uptime_s
    (if h.Serve.Proto.draining then "  DRAINING" else "");
  Printf.printf "c workers %d live, %d busy  queue_depth %d\n" h.Serve.Proto.live_workers
    h.Serve.Proto.in_flight h.Serve.Proto.h_queue_depth;
  Printf.printf "c states %s\n" (String.concat " " h.Serve.Proto.states);
  if h.Serve.Proto.lat_n > 0 then
    Printf.printf "c latency n=%d p50=%.3fs p95=%.3fs p99=%.3fs\n" h.Serve.Proto.lat_n
      h.Serve.Proto.lat_p50 h.Serve.Proto.lat_p95 h.Serve.Proto.lat_p99
  else print_endline "c latency n=0";
  Printf.printf "c requests %.0f  shed %.0f  timeouts %.0f\n" (m "serve.requests")
    (m "serve.shed") (m "serve.timeouts");
  Printf.printf "c crashes %.0f  respawns %.0f\n" (m "serve.worker_crashes")
    (m "serve.respawns");
  Printf.printf "c cache hits %.0f  misses %.0f  audits %.0f  audit_failures %.0f\n"
    (m "serve.cache_hits") (m "serve.cache_misses") (m "serve.cache_audits")
    (m "serve.cache_audit_failures");
  Printf.printf "c cert audits %.0f  audit_failures %.0f\n%!" (m "serve.cert_audits")
    (m "serve.cert_audit_failed")

let query socket file ping stats health timeout sleep certify =
  install_signal_handlers ();
  let request =
    if ping then Serve.Proto.Ping
    else if stats then Serve.Proto.Stats
    else if health then Serve.Proto.Health
    else
      match file with
      | Some f -> (
          match In_channel.with_open_bin f In_channel.input_all with
          | text ->
              Serve.Proto.Solve
                { text; timeout_s = timeout; sleep_s = sleep; want_cert = Option.is_some certify }
          | exception Sys_error msg ->
              Printf.eprintf "error: %s\n" msg;
              exit 2)
      | None ->
          Printf.eprintf "error: need a FILE argument, --ping or --stats\n";
          exit 2
  in
  match Serve.Client.roundtrip ~socket request with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  | Ok reply -> (
      match reply with
      | Serve.Proto.Pong ->
          print_endline "c pong";
          exit 0
      | Serve.Proto.Stats_reply { workers; queue_depth; metrics } ->
          Printf.printf "c workers %d\nc queue_depth %d\n" workers queue_depth;
          List.iter (fun (name, v) -> Printf.printf "c metric %s %g\n" name v) metrics;
          exit 0
      | Serve.Proto.Health_reply h ->
          render_health h;
          exit 0
      | Serve.Proto.Verdict { sat; elapsed_s; cached; audited; cert } ->
          Printf.printf "c elapsed %.3fs%s%s\n" elapsed_s
            (if cached then " (cached)" else "")
            (if audited then " (audited)" else "");
          (match (certify, cert) with
          | Some path, Some blob -> (
              match
                Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc blob)
              with
              | () -> Printf.printf "c certificate: %s\n" path
              | exception Sys_error msg ->
                  Printf.eprintf "error: cannot write certificate: %s\n" msg;
                  exit 2)
          | Some _, None ->
              (* not an error: the cache stores verdicts, not artifacts,
                 and a non-certifying daemon ignores the request flag *)
              Printf.printf "c no certificate in reply%s\n"
                (if cached then " (cache hit)" else " (daemon not certifying)")
          | None, _ -> ());
          print_endline (if sat then "s cnf SAT" else "s cnf UNSAT");
          exit (if sat then 10 else 20)
      | Serve.Proto.Failed { failure = Serve.Proto.F_timeout; elapsed_s; detail } ->
          Printf.eprintf "c timeout after %.3fs: %s\n" elapsed_s detail;
          print_endline "s cnf TIMEOUT";
          exit 124
      | Serve.Proto.Failed { failure = Serve.Proto.F_memout; elapsed_s; detail } ->
          Printf.eprintf "c memout after %.3fs: %s\n" elapsed_s detail;
          print_endline "s cnf MEMOUT";
          exit 125
      | Serve.Proto.Failed { failure = Serve.Proto.F_crash; detail; _ } ->
          Printf.eprintf "c crash: %s\n" detail;
          print_endline "s cnf ERROR";
          exit 5
      | Serve.Proto.Overloaded { queue_depth } ->
          Printf.eprintf "c overloaded (queue depth %d), retry later\n" queue_depth;
          exit 75
      | Serve.Proto.Draining ->
          Printf.eprintf "c daemon is draining, retry elsewhere\n";
          exit 75
      | Serve.Proto.Invalid msg ->
          Printf.eprintf "invalid request: %s\n" msg;
          exit 2
      | Serve.Proto.Audit_failed { cached_sat; fresh_sat } ->
          Printf.eprintf "c cache audit failure: memoized %s, fresh solve %s\n"
            (if cached_sat then "SAT" else "UNSAT")
            (if fresh_sat then "SAT" else "UNSAT");
          print_endline "s cnf ERROR";
          exit 3)

let query_cmd =
  let doc = "send one request to a running hqs serve daemon" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Submits the DQDIMACS $(i,FILE) to the daemon at $(b,--socket) and prints the \
         structured reply with the usual verdict exit codes; $(b,--ping) and $(b,--stats) \
         probe liveness and the serve.* metric registry instead.";
      `S "EXIT STATUS";
      `P
        "10 SAT; 20 UNSAT; 124 timeout; 125 memout; 5 crash; 75 overloaded or draining \
         (retry later); 3 cache audit failure; 2 usage error or daemon unreachable; 0 for \
         --ping/--stats.";
    ]
  in
  Cmd.v
    (Cmd.info "query" ~doc ~man)
    Term.(
      const query $ socket_arg
      $ Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"DQDIMACS input")
      $ Arg.(value & flag & info [ "ping" ] ~doc:"liveness probe")
      $ Arg.(value & flag & info [ "stats" ] ~doc:"print worker/queue/metric state")
      $ Arg.(
          value
          & flag
          & info [ "health" ]
              ~doc:
                "print one live introspection snapshot (pool states, latency quantiles, \
                 crash/cache counters) — the single-shot form of $(b,hqs top)")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "timeout"; "t" ] ~docv:"SECONDS" ~doc:"per-request wall budget")
      $ Arg.(
          value
          & opt float 0.0
          & info [ "sleep" ] ~docv:"SECONDS"
              ~doc:
                "test hook: make the worker sleep this long (outside the solve budget) \
                 before solving — deterministic deadline and overload scenarios")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "certify" ] ~docv:"FILE"
              ~doc:
                "ask the daemon for the solve's certificate artifact and write it to \
                 $(i,FILE); only honored by a daemon running with $(b,--certify), and only \
                 on a fresh (non-cached) verdict — verify offline with $(b,certcheck)"))

(* ---------------------------------------------------------- top command *)

(* hqs top: refreshing live view of a running daemon, built on the
   `health` request. Exit codes: 0 (clean exit, incl. --once), 2 when
   the daemon is unreachable or replies out of protocol. *)

let top socket interval once =
  install_signal_handlers ();
  let rec loop first =
    (match Serve.Client.roundtrip ~socket Serve.Proto.Health with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    | Ok (Serve.Proto.Health_reply h) ->
        if not once then print_string "\027[2J\027[H";
        Printf.printf "c hqs top — %s\n" socket;
        render_health h
    | Ok _ ->
        Printf.eprintf "error: daemon sent an unexpected reply to a health request\n";
        exit 2);
    ignore first;
    if once then exit 0
    else begin
      Unix.sleepf interval;
      loop false
    end
  in
  loop true

let top_cmd =
  let doc = "live introspection view of a running hqs serve daemon" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Polls the daemon at $(b,--socket) with `health' requests and renders a refreshing \
         snapshot: worker pool states, queue depth, in-flight jobs, rolling request-latency \
         quantiles (p50/p95/p99 over the last 512 requests), and the shed / crash / respawn \
         / cache counters. $(b,--once) prints a single snapshot and exits — the scriptable \
         form used by CI.";
      `S "EXIT STATUS";
      `P "0 on clean exit; 2 when the daemon is unreachable.";
    ]
  in
  Cmd.v
    (Cmd.info "top" ~doc ~man)
    Term.(
      const top $ socket_arg
      $ Arg.(
          value
          & opt float 1.0
          & info [ "interval"; "n" ] ~docv:"SECONDS" ~doc:"refresh period")
      $ Arg.(value & flag & info [ "once" ] ~doc:"print one snapshot and exit"))

let solve_term =
  Term.(
    const solve $ file $ timeout $ mem_limit $ node_limit
    $ flag [ "no-preprocess" ] "disable CNF preprocessing"
    $ flag [ "no-unitpure" ] "disable unit/pure detection on the AIG"
    $ flag [ "no-maxsat" ] "use the greedy elimination set instead of MaxSAT"
    $ flag [ "no-thm2" ] "disable elimination of fully-dependent existentials"
    $ flag [ "bce" ] "enable blocked-clause elimination (SAT'15 extension)"
    $ flag [ "expand-all" ] "eliminate every universal (ICCD'13 baseline)"
    $ flag [ "sat-probe" ] "start with a plain SAT call on the matrix"
    $ flag [ "no-fraig" ] "disable FRAIG sweeping"
    $ flag [ "search-backend" ] "use the QDPLL search back end instead of AIG elimination"
    $ flag [ "no-restart" ] "disable the degraded restart after a node-limit memout"
    $ chaos_seed $ chaos_points $ check $ dep_scheme $ inproc $ certify_arg
    $ flag [ "model" ] "on SAT, print and verify Skolem functions"
    $ flag [ "stats" ] "print statistics to stderr (with --trace, also a flame summary)"
    $ trace
    $ flag [ "metrics" ] "print the metric registry (counters, gauges, histograms) to stderr")

let solve_cmd =
  let doc = "solve a DQBF by quantifier elimination (HQS, DATE 2015)" in
  Cmd.v (Cmd.info "hqs" ~doc) solve_term

(* `Cmd.group ~default` would swallow the FILE positional of the plain
   solve invocation as an unknown command name, so dispatch by hand:
   `hqs sweep ...` evaluates the sweep command with argv shifted past
   the subcommand token, anything else keeps the historical `hqs FILE`
   interface intact. *)
let () =
  let argv = Sys.argv in
  let eval_result =
    if Array.length argv > 1 && argv.(1) = "sweep" then begin
      let shifted = Array.append [| "hqs sweep" |] (Array.sub argv 2 (Array.length argv - 2)) in
      Cmd.eval_value ~argv:shifted sweep_cmd
    end
    else if Array.length argv > 1 && argv.(1) = "analyze" then begin
      let shifted =
        Array.append [| "hqs analyze" |] (Array.sub argv 2 (Array.length argv - 2))
      in
      Cmd.eval_value ~argv:shifted analyze_cmd
    end
    else if Array.length argv > 1 && argv.(1) = "serve" then begin
      let shifted = Array.append [| "hqs serve" |] (Array.sub argv 2 (Array.length argv - 2)) in
      Cmd.eval_value ~argv:shifted serve_cmd
    end
    else if Array.length argv > 1 && argv.(1) = "query" then begin
      let shifted = Array.append [| "hqs query" |] (Array.sub argv 2 (Array.length argv - 2)) in
      Cmd.eval_value ~argv:shifted query_cmd
    end
    else if Array.length argv > 1 && argv.(1) = "top" then begin
      let shifted = Array.append [| "hqs top" |] (Array.sub argv 2 (Array.length argv - 2)) in
      Cmd.eval_value ~argv:shifted top_cmd
    end
    else Cmd.eval_value ~argv solve_cmd
  in
  (* cmdliner's own exit codes (124/125) collide with the timeout/memout
     convention above, so map evaluation outcomes explicitly *)
  match eval_result with
  | Ok (`Ok () | `Help | `Version) -> exit 0
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 1
