(* hqs: solve a DQDIMACS file with the elimination-based solver.

   Exit codes (SAT-competition convention for verdicts, split abort
   codes so a harness can tell the failure modes apart):
     10        SAT
     20        UNSAT
     2         usage error / invalid input (incl. command-line errors)
     1         internal error (uncaught exception)
     3         soundness-check violation     ("s cnf ERROR"; an invariant
               audit armed with --check / HQS_CHECK tripped)
     124       wall-clock timeout            ("s cnf TIMEOUT")
     125       memory budget exhausted       ("s cnf MEMOUT"; AIG node
               limit or --mem-limit heap governor)
     128+sig   aborted by SIGINT (130) / SIGTERM (143), after printing
               "c aborted (signal ...)" *)

open Cmdliner

let install_signal_handlers () =
  let handle name code signo =
    try
      Sys.set_signal signo
        (Sys.Signal_handle
           (fun _ ->
             Printf.printf "c aborted (signal %s)\n%!" name;
             exit code))
    with Invalid_argument _ | Sys_error _ -> ()
  in
  handle "SIGINT" 130 Sys.sigint;
  handle "SIGTERM" 143 Sys.sigterm

let solve file timeout mem_limit node_limit no_preprocess no_unitpure no_maxsat no_thm2 bce
    expand_all sat_probe no_fraig search_backend no_restart chaos_seed chaos_points check
    show_model show_stats trace show_metrics =
  install_signal_handlers ();
  let trace_file =
    match trace with
    | Some f -> Some f
    | None -> ( match Sys.getenv_opt "HQS_TRACE" with None | Some "" -> None | Some f -> Some f)
  in
  let check_level =
    match check with
    | Some s -> (
        (* the flag overrides the environment *)
        match Check.level_of_string s with
        | Some l -> l
        | None ->
            Printf.eprintf "error: --check %s: expected off, cheap or full\n" s;
            exit 2)
    | None -> (
        match Check.level_of_env () with
        | Ok l -> l
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 2)
  in
  let pcnf =
    try Dqbf.Pcnf.parse_file file
    with Failure msg | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  in
  (match Dqbf.Pcnf.validate pcnf with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "invalid input: %s\n" msg;
      exit 2);
  let chaos =
    match chaos_seed with
    | None -> Hqs_util.Chaos.off
    | Some seed ->
        let points =
          match chaos_points with None -> [] | Some s -> Hqs_util.Chaos.parse_points s
        in
        Hqs_util.Chaos.create ~seed ~points ()
  in
  let config =
    {
      Hqs.default_config with
      preprocess =
        (if no_preprocess then Dqbf.Preprocess.off
         else { Dqbf.Preprocess.default_config with blocked_clauses = bce });
      use_unitpure = not no_unitpure;
      use_maxsat = not no_maxsat;
      use_thm2 = not no_thm2;
      use_fraig = not no_fraig;
      mode = (if expand_all then Hqs.Expand_all else Hqs.Elimination);
      use_sat_probe = sat_probe;
      qbf_backend = (if search_backend then Hqs.Search_backend else Hqs.Elim_backend);
      node_limit;
      chaos;
      restart_on_memout = not no_restart;
      check_level;
    }
  in
  let budget =
    match timeout with
    | None -> Hqs_util.Budget.unlimited
    | Some s -> Hqs_util.Budget.of_seconds s
  in
  let budget =
    match mem_limit with
    | None -> budget
    | Some mb -> Hqs_util.Budget.with_mem_limit_mb budget mb
  in
  if Option.is_some trace_file then Obs.Trace.start ();
  (* emit the observability artifacts on every exit path — a timeout or
     memout trace is exactly the one worth looking at *)
  let finish_obs () =
    (match trace_file with
    | None -> ()
    | Some path -> (
        Obs.Trace.stop ();
        (match Obs.Trace.write_chrome_json path with
        | () ->
            Printf.eprintf "c trace: %d events -> %s%s\n%!" (List.length (Obs.Trace.events ()))
              path
              (let d = Obs.Trace.dropped () in
               if d > 0 then Printf.sprintf " (%d dropped)" d else "")
        | exception Sys_error msg -> Printf.eprintf "c trace write failed: %s\n%!" msg);
        if show_stats then prerr_string (Obs.Trace.flame_summary ())));
    if show_metrics then
      List.iter
        (fun (name, v) -> Printf.eprintf "c metric %s %g\n" name v)
        (Obs.Metrics.to_assoc (Obs.Metrics.snapshot ()))
  in
  let run () =
    if show_model then begin
      let verdict, model, stats = Hqs.solve_pcnf_model ~config ~budget pcnf in
      (match (verdict, model) with
      | Hqs.Sat, Some model ->
          (* print each Skolem function as a truth table over its deps *)
          List.iter
            (fun (y, deps) ->
              Printf.printf "v %d :" (y + 1);
              let k = List.length deps in
              if k <= 6 then
                for bits = 0 to (1 lsl k) - 1 do
                  let env v =
                    match List.find_index (fun d -> d = v) deps with
                    | Some i -> bits land (1 lsl i) <> 0
                    | None -> false
                  in
                  Printf.printf " %d" (if Dqbf.Skolem.eval model y env then 1 else 0)
                done
              else Printf.printf " <%d-input function>" k;
              print_newline ())
            pcnf.Dqbf.Pcnf.exists;
          (* independent certificate check *)
          let original = Dqbf.Pcnf.to_formula pcnf in
          (match Dqbf.Skolem.verify original model with
          | Ok () -> print_endline "c model verified"
          | Error e -> Format.printf "c MODEL REJECTED: %a@." Dqbf.Skolem.pp_failure e)
      | _ -> ());
      (verdict, stats)
    end
    else Hqs.solve_pcnf ~config ~budget pcnf
  in
  match run () with
  | verdict, stats ->
      if show_stats then Format.eprintf "c %a@." Hqs.pp_stats stats;
      finish_obs ();
      (match verdict with
      | Hqs.Sat ->
          print_endline "s cnf SAT";
          exit 10
      | Hqs.Unsat ->
          print_endline "s cnf UNSAT";
          exit 20)
  | exception Hqs_util.Budget.Timeout ->
      finish_obs ();
      print_endline "s cnf TIMEOUT";
      exit 124
  | exception Hqs_util.Budget.Out_of_memory_budget ->
      finish_obs ();
      print_endline "s cnf MEMOUT";
      exit 125
  | exception Check.Violation v ->
      finish_obs ();
      Format.printf "c check violation: %a@." Check.pp_violation v;
      print_endline "s cnf ERROR";
      exit 3

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"DQDIMACS input")

let timeout =
  Arg.(value & opt (some float) None & info [ "timeout"; "t" ] ~docv:"SECONDS" ~doc:"wall-clock limit")

let mem_limit =
  Arg.(
    value
    & opt (some int) None
    & info [ "mem-limit" ] ~docv:"MB"
        ~doc:"heap ceiling in megabytes (sampled from the OCaml GC; exceeding it is a memout)")

let node_limit =
  Arg.(
    value
    & opt (some int) None
    & info [ "node-limit" ] ~docv:"N" ~doc:"AIG node budget (memout emulation)")

let chaos_seed =
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos-seed" ] ~docv:"SEED"
        ~doc:"arm deterministic fault injection with this seed (testing the degradation ladder)")

let chaos_points =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos-points" ] ~docv:"P1,P2,..."
        ~doc:"restrict injection to these points (default: all points)")

let check =
  Arg.(
    value
    & opt (some string) None
    & info [ "check" ] ~docv:"LEVEL"
        ~doc:
          "soundness-auditor depth at every stage boundary: off, cheap (prefix invariants) or \
           full (deep AIG audit + Skolem certification); overrides \\$(b,HQS_CHECK)")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "record hierarchical spans of the solve pipeline and write them as Chrome trace_event \
           JSON (open in chrome://tracing or Perfetto); the \\$(b,HQS_TRACE) environment variable \
           names a file with the same effect. Tracing is off by default and costs one branch per \
           span when disabled")

let flag names doc = Arg.(value & flag & info names ~doc)

let cmd =
  let doc = "solve a DQBF by quantifier elimination (HQS, DATE 2015)" in
  Cmd.v
    (Cmd.info "hqs" ~doc)
    Term.(
      const solve $ file $ timeout $ mem_limit $ node_limit
      $ flag [ "no-preprocess" ] "disable CNF preprocessing"
      $ flag [ "no-unitpure" ] "disable unit/pure detection on the AIG"
      $ flag [ "no-maxsat" ] "use the greedy elimination set instead of MaxSAT"
      $ flag [ "no-thm2" ] "disable elimination of fully-dependent existentials"
      $ flag [ "bce" ] "enable blocked-clause elimination (SAT'15 extension)"
      $ flag [ "expand-all" ] "eliminate every universal (ICCD'13 baseline)"
      $ flag [ "sat-probe" ] "start with a plain SAT call on the matrix"
      $ flag [ "no-fraig" ] "disable FRAIG sweeping"
      $ flag [ "search-backend" ] "use the QDPLL search back end instead of AIG elimination"
      $ flag [ "no-restart" ] "disable the degraded restart after a node-limit memout"
      $ chaos_seed $ chaos_points $ check
      $ flag [ "model" ] "on SAT, print and verify Skolem functions"
      $ flag [ "stats" ] "print statistics to stderr (with --trace, also a flame summary)"
      $ trace
      $ flag [ "metrics" ] "print the metric registry (counters, gauges, histograms) to stderr")

(* cmdliner's own exit codes (124/125) collide with the timeout/memout
   convention above, so map evaluation outcomes explicitly *)
let () =
  match Cmd.eval_value cmd with
  | Ok (`Ok () | `Help | `Version) -> exit 0
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 1
