(* Independent certificate checker. Deliberately shares NO code with the
   solver libraries (machine-enforced by the lint cert-isolation rule
   and the ci.sh dune-describe gate): its own DQDIMACS parser, its own
   certificate parser, its own FNV-1a fingerprint, and a self-contained
   DPLL refutation engine. Trusting a verdict therefore requires
   trusting only the ~500 lines in this file.

   Usage: certcheck INSTANCE.dqdimacs CERTIFICATE

   Exit codes:
     0  verified  — the certificate proves the verdict
     1  refuted   — the certificate is well-formed but wrong
     2  malformed — unreadable/ill-formed input, fingerprint or prefix
                    mismatch (the certificate is for another instance)
     3  uncertified — the artifact explicitly declines to certify
                    (carries a reason, proves nothing either way)

   Certificate grammar (DESIGN.md §15): header [s cert STATUS], [h fnv],
   [a ... 0], [d y ... 0]; SAT body [n]/[i]/[g]/[o] lines describing a
   Skolem AIG (lit = 2*node + complement, node 0 = constant false);
   UNSAT body [x]/[u] lines listing full universal assignments whose
   expansion must be propositionally unsatisfiable. *)

let malformed fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "certcheck: malformed: %s\n" s;
      exit 2)
    fmt

let refuted fmt =
  Printf.ksprintf
    (fun s ->
      Printf.printf "s cert REFUTED\nc %s\n" s;
      exit 1)
    fmt

(* ------------------------------------------------------------ helpers *)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | content -> content
  | exception Sys_error msg -> malformed "%s" msg

let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let tokens line = String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")

let int_of tok =
  match int_of_string_opt tok with Some i -> i | None -> malformed "not an integer: %s" tok

let zero_terminated toks =
  let rec split acc = function
    | [ "0" ] -> List.rev acc
    | [] -> malformed "missing 0 terminator"
    | tk :: rest -> split (int_of tk :: acc) rest
  in
  split [] toks

module IntSet = Set.Make (Int)

(* --------------------------------------------------- DQDIMACS parsing *)

type instance = {
  univs : IntSet.t;  (** 1-based *)
  deps : (int, int list) Hashtbl.t;  (** existential -> sorted deps, 1-based *)
  clauses : int list list;
  max_var : int;
}

let parse_instance text =
  let univ_order = ref [] in
  let univs = ref IntSet.empty in
  let deps = Hashtbl.create 64 in
  let clauses = ref [] in
  let max_var = ref 0 in
  let note v = if v > !max_var then max_var := v in
  List.iter
    (fun line ->
      match tokens line with
      | [] -> ()
      | "c" :: _ -> ()
      | "p" :: "cnf" :: nv :: _ -> note (int_of nv)
      | "a" :: rest ->
          List.iter
            (fun v ->
              if v <= 0 then malformed "non-positive universal %d" v;
              note v;
              if not (IntSet.mem v !univs) then univ_order := v :: !univ_order;
              univs := IntSet.add v !univs)
            (zero_terminated rest)
      | "e" :: rest ->
          let ds = List.sort Int.compare (List.rev !univ_order) in
          List.iter
            (fun v ->
              if v <= 0 then malformed "non-positive existential %d" v;
              note v;
              Hashtbl.replace deps v ds)
            (zero_terminated rest)
      | "d" :: rest -> (
          match zero_terminated rest with
          | y :: ds ->
              if y <= 0 then malformed "non-positive existential %d" y;
              note y;
              List.iter note ds;
              Hashtbl.replace deps y (List.sort Int.compare ds)
          | [] -> malformed "empty d-line")
      | toks ->
          let rec clause acc = function
            | [] ->
                if acc <> [] then malformed "clause not terminated by 0";
                ()
            | "0" :: rest ->
                clauses := List.rev acc :: !clauses;
                clause [] rest
            | tk :: rest ->
                let l = int_of tk in
                note (abs l);
                clause (l :: acc) rest
          in
          clause [] toks)
    (String.split_on_char '\n' text);
  (* undeclared variables are existential with empty dependencies *)
  for v = 1 to !max_var do
    if not (IntSet.mem v !univs || Hashtbl.mem deps v) then Hashtbl.replace deps v []
  done;
  { univs = !univs; deps; clauses = List.rev !clauses; max_var = !max_var }

(* ------------------------------------------------ certificate parsing *)

type cert = {
  cstatus : string;
  cfp : string;
  cunivs : int list;  (** sorted *)
  cdeps : (int * int list) list;  (** sorted by variable *)
  num_nodes : int;
  inputs : (int * int) list;
  gates : (int * int * int) list;
  outputs : (int * int) list;
  ulines : int list list;
  reason : string;
}

let parse_cert text =
  let cstatus = ref "" in
  let cfp = ref "" in
  let cunivs = ref None in
  let cdeps = ref [] in
  let num_nodes = ref 0 in
  let inputs = ref [] in
  let gates = ref [] in
  let outputs = ref [] in
  let xcount = ref (-1) in
  let ulines = ref [] in
  let reason = ref "" in
  List.iter
    (fun line ->
      match tokens line with
      | [] -> ()
      | "c" :: _ -> ()
      | [ "s"; "cert"; st ] -> cstatus := st
      | [ "h"; h ] -> cfp := String.lowercase_ascii h
      | "a" :: rest -> cunivs := Some (zero_terminated rest)
      | "d" :: y :: rest -> cdeps := (int_of y, zero_terminated rest) :: !cdeps
      | [ "n"; k ] -> num_nodes := int_of k
      | [ "i"; nd; u ] -> inputs := (int_of nd, int_of u) :: !inputs
      | [ "g"; nd; a; b ] -> gates := (int_of nd, int_of a, int_of b) :: !gates
      | [ "o"; y; l ] -> outputs := (int_of y, int_of l) :: !outputs
      | [ "x"; k ] -> xcount := int_of k
      | "u" :: rest -> ulines := zero_terminated rest :: !ulines
      | "r" :: rest -> reason := String.concat " " rest
      | tk :: _ -> malformed "unrecognized certificate line starting with %s" tk)
    (String.split_on_char '\n' text);
  if String.length !cfp = 0 then malformed "certificate has no h line";
  let cunivs =
    match !cunivs with
    | Some u -> List.sort Int.compare u
    | None -> malformed "certificate has no a line"
  in
  let cdeps =
    List.rev_map (fun (y, ds) -> (y, List.sort Int.compare ds)) !cdeps
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let ulines = List.rev !ulines in
  (match !cstatus with
  | "SAT" | "UNSAT" | "UNCERTIFIED" -> ()
  | "" -> malformed "certificate has no s cert line"
  | st -> malformed "unknown certificate status %s" st);
  if String.equal !cstatus "UNSAT" && !xcount <> List.length ulines then
    malformed "x count disagrees with the u lines";
  {
    cstatus = !cstatus;
    cfp = !cfp;
    cunivs;
    cdeps;
    num_nodes = !num_nodes;
    inputs = List.rev !inputs;
    gates = List.rev !gates;
    outputs = List.rev !outputs;
    ulines;
    reason = !reason;
  }

(* --------------------------------------------------------------- DPLL *)

(* Self-contained SAT refutation: counter-free DPLL with unit
   propagation over occurrence lists. Variables are 1-based; literals
   are signed ints; [assign.(v)] is 0 unassigned, 1 true, -1 false. *)
let dpll nvars (clauses : int array list) =
  let clauses = Array.of_list clauses in
  if Array.exists (fun c -> Array.length c = 0) clauses then false
  else begin
    let occ = Array.make (nvars + 1) [] in
    Array.iteri
      (fun ci c -> Array.iter (fun l -> occ.(abs l) <- ci :: occ.(abs l)) c)
      clauses;
    let assign = Array.make (nvars + 1) 0 in
    let trail = ref [] in
    let value l = if l > 0 then assign.(l) else - assign.(-l) in
    let set l =
      assign.(abs l) <- (if l > 0 then 1 else -1);
      trail := l :: !trail
    in
    let undo_to mark =
      while !trail != mark do
        match !trail with
        | l :: rest ->
            assign.(abs l) <- 0;
            trail := rest
        | [] -> ()
      done
    in
    (* propagate units starting from [start]; false on conflict (which
       includes complementary literals inside [start] itself) *)
    let exception Conflict in
    let propagate start =
      let queue = Queue.create () in
      try
        List.iter
          (fun l ->
            match value l with
            | -1 -> raise Conflict
            | 0 ->
                set l;
                Queue.add l queue
            | _ -> ())
          start;
        while not (Queue.is_empty queue) do
          let l = Queue.pop queue in
          List.iter
            (fun ci ->
              let c = clauses.(ci) in
              let sat = ref false in
              let unassigned = ref 0 in
              let last = ref 0 in
              Array.iter
                (fun l' ->
                  match value l' with
                  | 1 -> sat := true
                  | 0 ->
                      incr unassigned;
                      last := l'
                  | _ -> ())
                c;
              if not !sat then
                if !unassigned = 0 then raise Conflict
                else if !unassigned = 1 && value !last = 0 then begin
                  set !last;
                  Queue.add !last queue
                end)
            occ.(abs l)
        done;
        true
      with Conflict -> false
    in
    (* top-level units *)
    let initial_units =
      Array.to_list clauses
      |> List.filter_map (fun c -> if Array.length c = 1 then Some c.(0) else None)
    in
    let rec solve () =
      (* find an unassigned variable occurring in an unsatisfied clause *)
      let branch = ref 0 in
      (try
         Array.iter
           (fun c ->
             let sat = ref false in
             let free = ref 0 in
             Array.iter
               (fun l ->
                 match value l with
                 | 1 -> sat := true
                 | 0 -> if !free = 0 then free := l
                 | _ -> ())
               c;
             if (not !sat) && !free <> 0 then begin
               branch := !free;
               raise Exit
             end)
           clauses
       with Exit -> ());
      if !branch = 0 then true (* every clause satisfied *)
      else
        let mark = !trail in
        let try_lit l =
          if propagate [ l ] && solve () then true
          else begin
            undo_to mark;
            false
          end
        in
        try_lit !branch || try_lit (- !branch)
    in
    propagate initial_units && solve ()
  end

(* ------------------------------------------------------ header checks *)

let check_header inst cert instance_bytes =
  if not (String.equal cert.cfp (fnv64 instance_bytes)) then
    malformed "fingerprint mismatch: certificate %s, instance %s" cert.cfp (fnv64 instance_bytes);
  let iunivs = IntSet.elements inst.univs in
  if not (List.equal Int.equal iunivs cert.cunivs) then malformed "universal sets differ";
  let iexists =
    Hashtbl.fold (fun y _ acc -> y :: acc) inst.deps [] |> List.sort Int.compare
  in
  if not (List.equal Int.equal iexists (List.map fst cert.cdeps)) then
    malformed "existential sets differ";
  List.iter
    (fun (y, ds) ->
      let inst_ds = match Hashtbl.find_opt inst.deps y with Some l -> l | None -> [] in
      List.iter
        (fun x ->
          if not (List.mem x inst_ds) then
            malformed "declared dependencies of %d exceed the instance's" y)
        ds)
    cert.cdeps

(* ------------------------------------------------------ SAT checking *)

(* Verify: (a) each output's structural support lies inside its declared
   Henkin set; (b) matrix[s_y / y] is a universal tautology, by Tseitin-
   encoding the Skolem AIG, adding one falsification selector per matrix
   clause, and refuting the conjunction with DPLL. *)
let check_sat inst cert =
  let n = cert.num_nodes in
  if n < 1 then malformed "SAT certificate without a node count";
  if List.length cert.inputs + List.length cert.gates <> n - 1 then
    malformed "node count disagrees with the i/g lines";
  let defined = Array.make n false in
  let def nd =
    if nd < 1 || nd >= n then malformed "node id %d out of range" nd;
    if defined.(nd) then malformed "node %d defined twice" nd;
    defined.(nd) <- true
  in
  List.iter (fun (nd, u) ->
      def nd;
      if not (IntSet.mem u inst.univs) then refuted "input labeled with non-universal %d" u)
    cert.inputs;
  let lit_ok l = l >= 0 && l < 2 * n in
  List.iter
    (fun (nd, f0, f1) ->
      def nd;
      if not (lit_ok f0 && lit_ok f1) then malformed "gate %d: fanin literal out of range" nd;
      if f0 / 2 >= nd || f1 / 2 >= nd then malformed "gate %d references a later node" nd)
    cert.gates;
  List.iter
    (fun (y, l) ->
      if not (Hashtbl.mem inst.deps y) then malformed "output for non-existential %d" y;
      if not (lit_ok l) then malformed "output of %d: literal out of range" y)
    cert.outputs;
  let out_vars = List.map fst cert.outputs |> List.sort_uniq Int.compare in
  let exist_vars = List.map fst cert.cdeps in
  if not (List.equal Int.equal out_vars exist_vars) then
    malformed "outputs do not cover exactly the existentials";
  (* (a) structural support, one pass in node order *)
  let sup = Array.make n IntSet.empty in
  List.iter (fun (nd, u) -> sup.(nd) <- IntSet.singleton u) cert.inputs;
  List.iter
    (fun (nd, f0, f1) -> sup.(nd) <- IntSet.union sup.(f0 / 2) sup.(f1 / 2))
    (List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) cert.gates);
  List.iter
    (fun (y, l) ->
      let declared =
        IntSet.of_list (match List.assoc_opt y cert.cdeps with Some d -> d | None -> [])
      in
      IntSet.iter
        (fun u ->
          if not (IntSet.mem u declared) then
            refuted "Skolem output of %d depends on %d outside its declared set" y u)
        sup.(l / 2))
    cert.outputs;
  (* (b) tautology: SAT vars 1..max_var are the instance variables
     (universals used directly); nodes and selectors get fresh vars.
     node_lit.(nd) is the signed SAT literal equivalent to AIG lit 2*nd,
     or 0 when the node is constant false. *)
  let next_var = ref inst.max_var in
  let fresh () = incr next_var; !next_var in
  let cnf = ref [] in
  let emit c = cnf := Array.of_list c :: !cnf in
  let node_lit = Array.make n 0 in
  List.iter (fun (nd, u) -> node_lit.(nd) <- u) cert.inputs;
  (* signed literal + constant tracking: Some lit, or None for constants;
     [sat_of l] is (constant : bool option, lit) *)
  let sat_of l =
    let nd = l / 2 in
    let s = if l land 1 = 1 then -1 else 1 in
    if nd = 0 then `Const (s < 0) (* node 0 = false, complemented = true *)
    else if node_lit.(nd) = 0 then `Const (s < 0) (* constant-false gate *)
    else `Lit (s * node_lit.(nd))
  in
  List.iter
    (fun (nd, f0, f1) ->
      match (sat_of f0, sat_of f1) with
      | `Const false, _ | _, `Const false -> node_lit.(nd) <- 0
      | `Const true, `Const true ->
          let v = fresh () in
          node_lit.(nd) <- v;
          emit [ v ]
      | `Const true, `Lit a | `Lit a, `Const true ->
          let v = fresh () in
          node_lit.(nd) <- v;
          emit [ -v; a ];
          emit [ v; -a ]
      | `Lit a, `Lit b ->
          let v = fresh () in
          node_lit.(nd) <- v;
          emit [ -v; a ];
          emit [ -v; b ];
          emit [ v; -a; -b ])
    (List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) cert.gates);
  let out_lit = Hashtbl.create 16 in
  List.iter (fun (y, l) -> Hashtbl.replace out_lit y (sat_of l)) cert.outputs;
  (* substituted literal of a matrix literal *)
  let subst l =
    let v = abs l in
    let s = if l < 0 then -1 else 1 in
    if IntSet.mem v inst.univs then `Lit (s * v)
    else
      match Hashtbl.find_opt out_lit v with
      | Some (`Const b) -> `Const (if s < 0 then not b else b)
      | Some (`Lit sl) -> `Lit (s * sl)
      | None -> malformed "matrix variable %d has no Skolem output" v
  in
  (* negation of the substituted matrix: selector z_c forces clause c
     false; at least one selector must hold *)
  let selectors = ref [] in
  List.iter
    (fun clause ->
      (* a clause containing a literal substituted to constant true can
         never be falsified: no selector *)
      let lits = List.map subst clause in
      if not (List.exists (fun s -> match s with `Const true -> true | _ -> false) lits) then begin
        let z = fresh () in
        selectors := z :: !selectors;
        List.iter
          (fun s -> match s with `Lit sl -> emit [ -z; -sl ] | `Const _ -> ())
          lits
      end)
    inst.clauses;
  (match !selectors with
  | [] ->
      (* every clause is constantly satisfied: tautology, nothing to solve *)
      ()
  | zs ->
      emit zs;
      if dpll !next_var !cnf then
        refuted "substituted matrix is not a universal tautology");
  print_endline "s cert VERIFIED"

(* ----------------------------------------------------- UNSAT checking *)

let check_unsat inst cert =
  if cert.ulines = [] then malformed "empty expansion refutation";
  let iunivs = IntSet.elements inst.univs in
  List.iter
    (fun l ->
      let vars = List.sort Int.compare (List.map abs l) in
      if not (List.equal Int.equal vars iunivs) then
        malformed "an expansion line does not assign exactly the universals")
    cert.ulines;
  (* expansion: copies keyed by (y, assignment restricted to the
     INSTANCE's dependency set of y) — a superset of the certificate's
     declared set, hence sound for any subset of the full expansion *)
  let next_var = ref 0 in
  let copies = Hashtbl.create 64 in
  let cnf = ref [] in
  let empty_clause = ref false in
  List.iter
    (fun uline ->
      let env = Hashtbl.create 16 in
      List.iter (fun l -> Hashtbl.replace env (abs l) (l > 0)) uline;
      let copy_of y =
        let ds = match Hashtbl.find_opt inst.deps y with Some l -> l | None -> [] in
        let key =
          string_of_int y ^ ":"
          ^ String.concat ""
              (List.map
                 (fun x ->
                   match Hashtbl.find_opt env x with Some true -> "1" | Some false | None -> "0")
                 ds)
        in
        match Hashtbl.find_opt copies key with
        | Some v -> v
        | None ->
            incr next_var;
            Hashtbl.replace copies key !next_var;
            !next_var
      in
      List.iter
        (fun clause ->
          let out = ref [] in
          let satisfied = ref false in
          List.iter
            (fun l ->
              let v = abs l in
              match Hashtbl.find_opt env v with
              | Some b -> if b = (l > 0) then satisfied := true
              | None ->
                  let cv = copy_of v in
                  out := (if l > 0 then cv else -cv) :: !out)
            clause;
          if not !satisfied then
            match !out with
            | [] -> empty_clause := true
            | c -> cnf := Array.of_list c :: !cnf)
        inst.clauses)
    cert.ulines;
  if (not !empty_clause) && dpll !next_var !cnf then
    refuted "expansion is satisfiable: the refutation does not hold";
  print_endline "s cert VERIFIED"

(* --------------------------------------------------------------- main *)

let () =
  match Sys.argv with
  | [| _; instance_path; cert_path |] -> (
      let instance_bytes = read_file instance_path in
      let cert = parse_cert (read_file cert_path) in
      let inst = parse_instance instance_bytes in
      check_header inst cert instance_bytes;
      match cert.cstatus with
      | "SAT" -> check_sat inst cert
      | "UNSAT" -> check_unsat inst cert
      | _ ->
          Printf.printf "s cert UNCERTIFIED\nc %s\n" cert.reason;
          exit 3)
  | _ ->
      prerr_endline "usage: certcheck INSTANCE.dqdimacs CERTIFICATE";
      exit 2
