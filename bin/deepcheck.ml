(* deepcheck: the typed-tree interprocedural analysis gate. Reads the
   .cmt/.cmti artifacts dune already produced (refusing stale ones with
   exit 2), builds the whole-repo call graph, and enforces three
   policies kept as reviewed files at the repo root:

     exn-escape   may-raise sets of every public value vs. the
                  per-library allowlists in deepcheck.escapes
     fork-unsafe  toplevel mutable state / inherited fds reachable from
                  the fork entry points vs. deepcheck.forkinit
     layering     actual inter-library deps (dune describe) vs. the
                  allowed DAG in deepcheck.layers

   Must not run under `dune exec` (dune holds the build lock deepcheck's
   `dune describe` subprocess needs): build it, then run
   _build/default/bin/deepcheck.exe — as ci.sh does. *)

let file_arg names ~default ~doc =
  let open Cmdliner in
  Arg.(value (opt string default (info names ~docv:"FILE" ~doc)))

let format_arg =
  let open Cmdliner in
  let human = (Linter.Human, Arg.info [ "human" ] ~doc:"Human-readable output (default).") in
  let json =
    ( Linter.Json,
      Arg.info [ "json" ]
        ~doc:
          "One JSON document on stdout: \
           {\"tool\":\"deepcheck\",\"findings\":[...],\"count\":N}. Emitted even on a clean run."
    )
  in
  Arg.(value (vflag Linter.Human [ human; json ]))

let rules_doc =
  [
    `I
      ( "$(b,exn-escape)",
        "An exception may escape a value exported by a library's .mli without being named in \
         that library's stanza in deepcheck.escapes. The may-raise set is a whole-repo fixpoint: \
         direct raises, stdlib partial functions (Hashtbl.find, List.find, int_of_string, ...), \
         and everything transitively called, minus what enclosing handlers provably catch \
         (catch-alls that re-raise their binder do not count as handlers)." );
    `I
      ( "$(b,fork-unsafe)",
        "Code reachable from a fork entry point (deepcheck.forkinit 'entry' lines) reads or \
         writes toplevel mutable state or an inherited file descriptor that is not sanctioned \
         by an 'allow' line. A forked child shares the parent's heap snapshot and fds; every \
         such touch must be deliberately reinitialised (see Obs.fork_reinit) or sanctioned with \
         a reason." );
    `I
      ( "$(b,layering)",
        "A local library or executable depends on a local library that deepcheck.layers does \
         not allow. The actual edges come from `dune describe`, so the committed DAG is checked \
         against what dune really links, not against comments." );
  ]

let man =
  [
    `S Cmdliner.Manpage.s_description;
    `P
      "Interprocedural companion to $(b,lint)(1): where lint parses sources, deepcheck walks \
       the typed trees (.cmt) dune already produced and reasons across calls. A stale or \
       missing .cmt is exit 2, never a silent pass: run $(b,dune build) first.";
    `S "RULES";
  ]
  @ rules_doc
  @ [
      `S "SUPPRESSION";
      `P
        "A finding is silenced by the marker $(b,deepcheck: allow RULE) on the offending line \
         or the line directly above — same engine as lint. Policy-level sanctions belong in \
         the deepcheck.* files, with a reason.";
      `S "SEE ALSO";
      `P "$(b,lint)(1).";
    ]

let cmd =
  let open Cmdliner in
  let run root describe_file escapes forkinit layers format dump =
    Deepcheck.Driver.run
      {
        Deepcheck.Driver.c_root = root;
        c_describe_file = describe_file;
        c_escapes_file = escapes;
        c_forkinit_file = forkinit;
        c_layers_file = layers;
        c_format = format;
        c_dump = dump;
      }
  in
  let root_arg =
    Arg.(value (opt string "." (info [ "root" ] ~docv:"DIR" ~doc:"Repository root (default: cwd).")))
  in
  let describe_arg =
    Arg.(
      value
        (opt (some string) None
           (info [ "describe" ] ~docv:"FILE"
              ~doc:
                "Read captured `dune describe` output from $(docv) instead of running dune \
                 (used by CI fixtures; the staleness audit still runs).")))
  in
  let escapes_arg =
    file_arg [ "escapes" ] ~default:"deepcheck.escapes"
      ~doc:"Per-library exception allowlist file."
  in
  let forkinit_arg =
    file_arg [ "forkinit" ] ~default:"deepcheck.forkinit"
      ~doc:"Fork entry points and sanctioned globals file."
  in
  let layers_arg =
    file_arg [ "layers" ] ~default:"deepcheck.layers" ~doc:"Allowed inter-library DAG file."
  in
  let dump_arg =
    Arg.(
      value
        (flag
           (info [ "dump" ]
              ~doc:
                "Print the extracted call graph (nodes, raises, may-raise sets, public \
                 surface) instead of analyzing — the debugging window into what the analyses \
                 see.")))
  in
  let info =
    Cmd.info "deepcheck" ~doc:"typed-tree interprocedural analysis gate for the hqs repo" ~man
      ~exits:
        [
          Cmd.Exit.info 0 ~doc:"clean";
          Cmd.Exit.info 1 ~doc:"findings reported";
          Cmd.Exit.info 2 ~doc:"usage, staleness, or policy-file error";
        ]
  in
  Cmd.v info
    Term.(
      const run $ root_arg $ describe_arg $ escapes_arg $ forkinit_arg $ layers_arg $ format_arg
      $ dump_arg)

let () = exit (Cmdliner.Cmd.eval' cmd)
