(* lint: the repo's static-analysis gate (see lib/lint/linter.mli).

     dune exec bin/lint.exe -- lib bin bench test examples

   Exit codes: 0 clean, 1 findings, 2 usage error (incl. nonexistent or
   unreadable paths, and paths contributing no .ml/.mli files — a gate
   must never silently skip what it was pointed at). *)

let () =
  let paths =
    match Array.to_list Sys.argv with
    | [] | [ _ ] -> [ "lib"; "bin"; "bench"; "test"; "examples" ]
    | _ :: rest -> rest
  in
  exit (Linter.run paths)
