(* lint: the repo's static-analysis gate (see lib/lint/linter.mli).

     dune exec bin/lint.exe -- lib bin bench test

   Exit codes: 0 clean, 1 findings, 2 usage error. *)

let () =
  let paths =
    match Array.to_list Sys.argv with [] | [ _ ] -> [ "lib"; "bin"; "bench"; "test" ] | _ :: rest -> rest
  in
  exit (Linter.run paths)
