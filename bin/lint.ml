(* lint: the repo's syntactic static-analysis gate (see
   lib/lint/linter.mli). The man page is the reference for the rule set
   and the suppression syntax; test_lint asserts every rule is
   documented here.

   Exit codes: 0 clean, 1 findings, 2 usage error (incl. nonexistent or
   unreadable paths, and paths contributing no .ml/.mli files — a gate
   must never silently skip what it was pointed at). *)

let default_paths = [ "lib"; "bin"; "bench"; "test"; "examples" ]

let format_arg =
  let open Cmdliner in
  let human = (Linter.Human, Arg.info [ "human" ] ~doc:"Human-readable output (default).") in
  let json =
    ( Linter.Json,
      Arg.info [ "json" ]
        ~doc:
          "One JSON document on stdout: \
           {\"tool\":\"lint\",\"findings\":[...],\"count\":N}. Emitted even on a clean run." )
  in
  Arg.(value (vflag Linter.Human [ human; json ]))

let paths_arg =
  let open Cmdliner in
  Arg.(value (pos_all string default_paths (info [] ~docv:"PATH" ~doc:"Files or directories to lint (default: $(b,lib bin bench test examples)).")))

let rules_doc =
  List.map
    (fun rule ->
      `I (Printf.sprintf "$(b,%s)" (Linter.rule_name rule), Linter.rule_doc rule))
    Linter.all_rules

let man =
  [
    `S Cmdliner.Manpage.s_description;
    `P
      "Parse every .ml/.mli under the given paths and flag the repo's \
       forbidden constructs. Exit 0 when clean, 1 with findings, 2 on a \
       usage error (nonexistent path, unreadable file, or a path \
       contributing no OCaml sources — the gate never silently skips \
       what it was pointed at).";
    `S "RULES";
  ]
  @ rules_doc
  @ [
      `S "SUPPRESSION";
      `P
        "A finding is silenced by the marker $(b,lint: allow RULE) (in a \
         comment) on the offending line or the line directly above, e.g. \
         (* lint: allow catch-all *). Suppressions are grep-able and \
         reviewed like any other diff line.";
      `S "SEE ALSO";
      `P "$(b,deepcheck)(1) — the typed-tree interprocedural analyzer sharing this exit contract.";
    ]

let cmd =
  let open Cmdliner in
  let run format paths = Linter.run ~format paths in
  let info =
    Cmd.info "lint" ~doc:"syntactic static-analysis gate for the hqs repo" ~man
      ~exits:
        [
          Cmd.Exit.info 0 ~doc:"clean";
          Cmd.Exit.info 1 ~doc:"findings reported";
          Cmd.Exit.info 2 ~doc:"usage error";
        ]
  in
  Cmd.v info Term.(const run $ format_arg $ paths_arg)

let () = exit (Cmdliner.Cmd.eval' cmd)
